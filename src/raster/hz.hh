/**
 * @file
 * Hierarchical Z buffer ([18], ATI Hyper-Z). An on-die structure holding
 * a conservative maximum depth per 8x8 screen tile; quads whose minimum
 * interpolated depth exceeds the tile maximum cannot pass a LESS/LEQUAL
 * depth test and are removed before shading *without touching GDDR*.
 * The paper's Table IX shows HZ removing 34-42% of all quads.
 *
 * The tile maxima are maintained from per-quad maxima fed back by the
 * z-stencil stage after depth writes; tile recomputation is lazy.
 */

#ifndef WC3D_RASTER_HZ_HH
#define WC3D_RASTER_HZ_HH

#include <cstdint>
#include <vector>

namespace wc3d::raster {

/** Outcome of a min/max HZ range test. */
enum class HzResult
{
    Culled,    ///< guaranteed occluded (quad zmin > tile max)
    Accepted,  ///< guaranteed visible (quad zmax < tile min)
    Ambiguous, ///< must run the full z test
};

/** HZ statistics (quad removal, Table IX; early accepts are the
 *  paper's suggested min/max-HZ improvement). */
struct HzStats
{
    std::uint64_t quadsTested = 0;
    std::uint64_t quadsCulled = 0;
    std::uint64_t quadsAccepted = 0;

    double
    cullRate() const
    {
        return quadsTested ? static_cast<double>(quadsCulled) / quadsTested
                           : 0.0;
    }

    double
    acceptRate() const
    {
        return quadsTested
            ? static_cast<double>(quadsAccepted) / quadsTested
            : 0.0;
    }
};

/** The on-die hierarchical depth structure. */
class HierarchicalZ
{
  public:
    /** Tile footprint in pixels. */
    static constexpr int kTileDim = 8;

    HierarchicalZ(int width, int height);

    /** Reset every tile to @p depth (fast clear; no GDDR traffic). */
    void clear(float depth = 1.0f);

    /**
     * Test a 2x2 quad at (@p x, @p y) whose minimum interpolated depth
     * is @p quad_z_min against the covering tile.
     *
     * @return true when the quad may be visible (must continue);
     *         false when it is guaranteed occluded (stats updated).
     */
    bool testQuad(int x, int y, float quad_z_min)
    { return testQuad(x, y, quad_z_min, _stats); }

    /**
     * As above, charging @p stats instead of the member statistics.
     * Tile-parallel workers pass a private HzStats (merged after the
     * join): the depth arrays they touch are exclusively theirs by
     * screen-tile ownership, but the counters are not.
     */
    bool testQuad(int x, int y, float quad_z_min, HzStats &stats);

    /**
     * Min/max test (the paper's "HZ storing maximum and minimum
     * values" improvement): additionally detects guaranteed-visible
     * quads (zmax below the tile minimum), which can skip the z-buffer
     * read entirely.
     */
    HzResult testQuadRange(int x, int y, float quad_z_min,
                           float quad_z_max)
    { return testQuadRange(x, y, quad_z_min, quad_z_max, _stats); }

    /** Stats-parameterised variant (see testQuad overload). */
    HzResult testQuadRange(int x, int y, float quad_z_min,
                           float quad_z_max, HzStats &stats);

    /**
     * Depth-write feedback from the z-stencil stage: the quad at
     * (@p x, @p y) now has maximum stored depth @p quad_z_max.
     */
    void updateQuad(int x, int y, float quad_z_max);

    /** Min/max feedback: stored depth range of the quad after writes. */
    void updateQuadRange(int x, int y, float quad_z_min,
                         float quad_z_max);

    /** Tile maximum covering pixel (x, y) (recomputes if stale). */
    float tileMax(int x, int y);

    /** Tile minimum covering pixel (x, y) (recomputes if stale). */
    float tileMin(int x, int y);

    const HzStats &stats() const { return _stats; }
    void resetStats() { _stats = HzStats(); }

    /** Fold a worker-private stats shard into the member statistics. */
    void
    mergeStats(const HzStats &s)
    {
        _stats.quadsTested += s.quadsTested;
        _stats.quadsCulled += s.quadsCulled;
        _stats.quadsAccepted += s.quadsAccepted;
    }

    /** On-die storage footprint in bytes (for reporting). */
    std::uint64_t storageBytes() const;

  private:
    int tileIndex(int x, int y) const;
    int quadIndex(int x, int y) const;
    void refreshTile(int tile, int tx, int ty);

    int _width;
    int _height;
    int _tilesX;
    int _tilesY;
    int _quadsX;
    int _quadsY;
    std::vector<float> _tileMax;   ///< per 8x8 tile
    std::vector<float> _tileMin;
    /// One byte per tile, not vector<bool>: tile-parallel workers set
    /// flags for the (disjoint) tiles they own, which bit-packing would
    /// turn into a data race on the shared words.
    std::vector<std::uint8_t> _tileDirty;
    std::vector<float> _quadMax;   ///< per 2x2 quad (feedback store)
    std::vector<float> _quadMin;
    HzStats _stats;
};

} // namespace wc3d::raster

#endif // WC3D_RASTER_HZ_HH
