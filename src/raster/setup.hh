/**
 * @file
 * Triangle setup: builds edge equations, the (scissored) bounding box
 * and interpolation data for one screen-space triangle. The ATTILA
 * configuration the paper uses performs setup at 2 triangles/cycle
 * (Table II); here setup is a pure function feeding the rasterizer.
 */

#ifndef WC3D_RASTER_SETUP_HH
#define WC3D_RASTER_SETUP_HH

#include "geom/viewport.hh"
#include "raster/edgefunc.hh"

namespace wc3d::raster {

/** Fully set-up triangle ready for traversal. */
struct TriangleSetup
{
    EdgeFunction edges[3]; ///< inside when all cover their value
    double area2 = 0.0;    ///< twice the (positive) screen area
    geom::ScreenVertex v[3];
    int minX = 0;          ///< scissored pixel bounding box (inclusive)
    int minY = 0;
    int maxX = -1;
    int maxY = -1;
    bool valid = false;    ///< false: degenerate or fully scissored out

    /**
     * Screen-space barycentric weights at a sample point.
     * @param x,y  sample position (pixel center)
     * @param lambda  the three weights, summing to 1
     */
    void
    barycentrics(double x, double y, float lambda[3]) const
    {
        double e0 = edges[0].eval(x, y);
        double e1 = edges[1].eval(x, y);
        double e2 = edges[2].eval(x, y);
        lambda[0] = static_cast<float>(e1 / area2);
        lambda[1] = static_cast<float>(e2 / area2);
        lambda[2] = static_cast<float>(e0 / area2);
    }

    /** Linearly interpolated depth at screen-space weights @p lambda. */
    float
    interpolateZ(const float lambda[3]) const
    {
        return lambda[0] * v[0].z + lambda[1] * v[1].z +
               lambda[2] * v[2].z;
    }

    /**
     * The perspective weights shared by every varying slot at one
     * sample point. Hoisting this out of the per-slot loop saves three
     * multiplies, three adds and a divide per additional slot; the
     * per-slot arithmetic is unchanged, so results stay bit-identical.
     */
    struct VaryingBasis
    {
        float w0 = 0.0f;
        float w1 = 0.0f;
        float w2 = 0.0f;
        float inv = 0.0f;
        bool valid = false; ///< false: degenerate (all slots read zero)
    };

    VaryingBasis
    varyingBasis(const float lambda[3]) const
    {
        VaryingBasis b;
        b.w0 = lambda[0] * v[0].invW;
        b.w1 = lambda[1] * v[1].invW;
        b.w2 = lambda[2] * v[2].invW;
        float denom = b.w0 + b.w1 + b.w2;
        if (denom == 0.0f)
            return b;
        b.inv = 1.0f / denom;
        b.valid = true;
        return b;
    }

    /** Perspective-correct varying interpolation on a hoisted basis. */
    Vec4
    interpolateVarying(const VaryingBasis &b, int slot) const
    {
        if (!b.valid)
            return {};
        auto idx = static_cast<std::size_t>(slot);
        return (v[0].varyings[idx] * b.w0 + v[1].varyings[idx] * b.w1 +
                v[2].varyings[idx] * b.w2) * b.inv;
    }

    /**
     * Perspective-correct varying interpolation at screen-space
     * weights @p lambda.
     */
    Vec4
    interpolateVarying(const float lambda[3], int slot) const
    {
        return interpolateVarying(varyingBasis(lambda), slot);
    }
};

/**
 * Build setup data for @p tri scissored to [0,width) x [0,height).
 * Orientation is normalised so the interior is E >= 0 for all edges;
 * degenerate (zero-area) or fully clipped-out triangles yield
 * valid == false.
 */
TriangleSetup setupTriangle(const geom::ScreenTriangle &tri, int width,
                            int height);

} // namespace wc3d::raster

#endif // WC3D_RASTER_SETUP_HH
