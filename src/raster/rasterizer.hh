/**
 * @file
 * Recursive tiled rasterizer. Mirrors the algorithm the paper describes
 * for ATTILA (Section III.C, based on [17]): traversal "works at two
 * different tile levels: an upper level with a 16x16 footprint and at a
 * lower level generating each cycle 8x8 fragment tiles. These tiles are
 * then ... partitioned into 2x2 fragment tiles, called quads. Quads are
 * the working unit of the subsequent GPU pipeline stages."
 */

#ifndef WC3D_RASTER_RASTERIZER_HH
#define WC3D_RASTER_RASTERIZER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "raster/setup.hh"

namespace wc3d::raster {

/** Upper and lower traversal tile sizes (pixels). */
constexpr int kUpperTile = 16;
constexpr int kLowerTile = 8;
constexpr int kQuadDim = 2;

/** A rasterized 2x2 quad handed to the fragment pipeline. */
struct RasterQuad
{
    int x = 0; ///< top-left pixel x (even)
    int y = 0; ///< top-left pixel y (even)
    /** Coverage bit per lane; lane order (x,y),(x+1,y),(x,y+1),(x+1,y+1). */
    std::uint8_t coverage = 0;
    /** Linear depth per lane (defined for all lanes, covered or not). */
    float z[4] = {};
    /** Screen-space barycentrics per lane for attribute interpolation. */
    float lambda[4][3] = {};

    bool covered(int lane) const { return (coverage >> lane) & 1; }
    int coveredCount() const;
    bool full() const { return coverage == 0xf; }
};

/** Rasterization statistics (paper Tables VIII, X and XI inputs). */
struct RasterStats
{
    std::uint64_t triangles = 0;      ///< valid triangles traversed
    std::uint64_t upperTiles = 0;     ///< 16x16 tiles visited
    std::uint64_t lowerTiles = 0;     ///< 8x8 tiles visited
    std::uint64_t quads = 0;          ///< quads emitted (>=1 lane covered)
    std::uint64_t fullQuads = 0;      ///< quads with all 4 lanes covered
    std::uint64_t fragments = 0;      ///< covered fragments generated

    /** Quad efficiency: fraction of emitted quads that are complete. */
    double
    quadEfficiency() const
    {
        return quads ? static_cast<double>(fullQuads) / quads : 0.0;
    }

    RasterStats &
    operator+=(const RasterStats &o)
    {
        triangles += o.triangles;
        upperTiles += o.upperTiles;
        lowerTiles += o.lowerTiles;
        quads += o.quads;
        fullQuads += o.fullQuads;
        fragments += o.fragments;
        return *this;
    }
};

/**
 * Non-owning view of one quad stored in a QuadBatch. Plain data plus
 * pointers into the batch's SoA lanes; invalidated by append() (vector
 * growth) — take refs only once the batch has stopped growing.
 */
struct QuadRef
{
    int x = 0;
    int y = 0;
    std::uint8_t coverage = 0;
    const float *z = nullptr;      ///< 4 per-lane depths
    const float *lambda = nullptr; ///< 4 x 3 per-lane barycentrics

    bool covered(int lane) const { return (coverage >> lane) & 1; }
    bool full() const { return coverage == 0xf; }

    int
    coveredCount() const
    {
        int n = 0;
        for (int l = 0; l < 4; ++l)
            n += covered(l);
        return n;
    }

    const float *laneLambda(int lane) const { return lambda + 3 * lane; }
};

/**
 * A growable structure-of-arrays batch of rasterized quads. The
 * fragment pipeline shades whole batches per interpreter entry instead
 * of taking one callback per quad; clear() keeps the allocations so a
 * single batch serves as a reusable arena across triangles and draws.
 */
class QuadBatch
{
  public:
    std::size_t size() const { return _x.size(); }
    bool empty() const { return _x.empty(); }

    /** Drop all quads but keep lane capacity (arena reuse). */
    void
    clear()
    {
        _x.clear();
        _y.clear();
        _coverage.clear();
        _z.clear();
        _lambda.clear();
    }

    void
    append(const RasterQuad &q)
    {
        _x.push_back(q.x);
        _y.push_back(q.y);
        _coverage.push_back(q.coverage);
        _z.insert(_z.end(), q.z, q.z + 4);
        const float *l = &q.lambda[0][0];
        _lambda.insert(_lambda.end(), l, l + 12);
    }

    /** Copy one quad out of another batch (staging pipelines). */
    void
    append(const QuadRef &q)
    {
        _x.push_back(q.x);
        _y.push_back(q.y);
        _coverage.push_back(q.coverage);
        _z.insert(_z.end(), q.z, q.z + 4);
        _lambda.insert(_lambda.end(), q.lambda, q.lambda + 12);
    }

    QuadRef
    ref(std::size_t i) const
    {
        return {_x[i], _y[i], _coverage[i], _z.data() + 4 * i,
                _lambda.data() + 12 * i};
    }

  private:
    std::vector<int> _x;
    std::vector<int> _y;
    std::vector<std::uint8_t> _coverage;
    std::vector<float> _z;      ///< 4 floats per quad
    std::vector<float> _lambda; ///< 12 floats per quad
};

/**
 * The traversal engine. Emits covered quads to a callback or into a
 * QuadBatch; carries no framebuffer state of its own.
 */
class Rasterizer
{
  public:
    /** @param width,height render-target extent (scissor). */
    Rasterizer(int width, int height);

    /**
     * Traverse one set-up triangle, invoking @p emit for every quad
     * with at least one covered sample.
     *
     * @tparam Fn void(const RasterQuad &)
     */
    template <typename Fn>
    void
    rasterize(const TriangleSetup &tri, Fn &&emit)
    {
        if (!tri.valid)
            return;
        ++_stats.triangles;

        int tile_min_x = (tri.minX / kUpperTile) * kUpperTile;
        int tile_min_y = (tri.minY / kUpperTile) * kUpperTile;
        for (int ty = tile_min_y; ty <= tri.maxY; ty += kUpperTile) {
            for (int tx = tile_min_x; tx <= tri.maxX; tx += kUpperTile) {
                if (!tileOverlaps(tri, tx, ty, kUpperTile))
                    continue;
                ++_stats.upperTiles;
                traverseLower(tri, tx, ty, emit);
            }
        }
    }

    /**
     * Traverse one set-up triangle, appending every covered quad to
     * @p out in traversal order. Identical quad sequence and statistics
     * to the callback overload (it is implemented on top of it); the
     * caller clears or drains @p out.
     */
    void rasterize(const TriangleSetup &tri, QuadBatch &out);

    /**
     * Traverse the part of one set-up triangle inside the screen tile
     * [@p x0, @p x1) x [@p y0, @p y1). The tile bounds must be multiples
     * of kUpperTile, so the 16x16 traversal tiles of the full rasterize()
     * walk partition exactly across screen tiles: running rasterizeTile
     * over a disjoint tile cover visits every upper/lower tile and emits
     * every quad of the full walk exactly once, and summing the
     * per-tile statistics reproduces rasterize()'s counts — except
     * `triangles`, which tile traversal never bumps (a triangle spans
     * many tiles; the binning pass counts it once via noteTriangles()).
     */
    template <typename Fn>
    void
    rasterizeTile(const TriangleSetup &tri, int x0, int y0, int x1,
                  int y1, Fn &&emit)
    {
        if (!tri.valid)
            return;
        // max() of two kUpperTile multiples keeps the walk aligned.
        int tile_min_x = std::max((tri.minX / kUpperTile) * kUpperTile, x0);
        int tile_min_y = std::max((tri.minY / kUpperTile) * kUpperTile, y0);
        int max_x = std::min(tri.maxX, x1 - 1);
        int max_y = std::min(tri.maxY, y1 - 1);
        for (int ty = tile_min_y; ty <= max_y; ty += kUpperTile) {
            for (int tx = tile_min_x; tx <= max_x; tx += kUpperTile) {
                if (!tileOverlaps(tri, tx, ty, kUpperTile))
                    continue;
                ++_stats.upperTiles;
                traverseLower(tri, tx, ty, emit);
            }
        }
    }

    /** Batch-appending variant of the tile-clipped traversal. */
    void rasterizeTile(const TriangleSetup &tri, int x0, int y0, int x1,
                       int y1, QuadBatch &out);

    const RasterStats &stats() const { return _stats; }
    void resetStats() { _stats = RasterStats(); }

    /** Fold a tile worker's traversal statistics into this one's. */
    void mergeStats(const RasterStats &s) { _stats += s; }

    /** Count triangles binned for tile traversal (see rasterizeTile). */
    void noteTriangles(std::uint64_t n) { _stats.triangles += n; }

    int width() const { return _width; }
    int height() const { return _height; }

  private:
    /** Conservative tile-vs-triangle overlap test on pixel centers. */
    static bool tileOverlaps(const TriangleSetup &tri, int x, int y,
                             int size);

    template <typename Fn>
    void
    traverseLower(const TriangleSetup &tri, int ux, int uy, Fn &&emit)
    {
        for (int ly = uy; ly < uy + kUpperTile; ly += kLowerTile) {
            for (int lx = ux; lx < ux + kUpperTile; lx += kLowerTile) {
                if (lx > tri.maxX || ly > tri.maxY ||
                    lx + kLowerTile <= tri.minX ||
                    ly + kLowerTile <= tri.minY) {
                    continue;
                }
                if (!tileOverlaps(tri, lx, ly, kLowerTile))
                    continue;
                ++_stats.lowerTiles;
                traverseQuads(tri, lx, ly, emit);
            }
        }
    }

    template <typename Fn>
    void
    traverseQuads(const TriangleSetup &tri, int lx, int ly, Fn &&emit)
    {
        for (int qy = ly; qy < ly + kLowerTile; qy += kQuadDim) {
            for (int qx = lx; qx < lx + kLowerTile; qx += kQuadDim) {
                if (qx >= _width || qy >= _height)
                    continue;
                RasterQuad quad;
                if (evaluateQuad(tri, qx, qy, quad)) {
                    ++_stats.quads;
                    if (quad.full())
                        ++_stats.fullQuads;
                    _stats.fragments += static_cast<std::uint64_t>(
                        quad.coveredCount());
                    emit(static_cast<const RasterQuad &>(quad));
                }
            }
        }
    }

    /** Fill @p quad; @return true when any lane is covered. */
    bool evaluateQuad(const TriangleSetup &tri, int qx, int qy,
                      RasterQuad &quad) const;

    int _width;
    int _height;
    RasterStats _stats;
};

} // namespace wc3d::raster

#endif // WC3D_RASTER_RASTERIZER_HH
