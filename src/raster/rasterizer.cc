#include "raster/rasterizer.hh"

#include "common/log.hh"

namespace wc3d::raster {

int
RasterQuad::coveredCount() const
{
    int n = 0;
    for (int l = 0; l < 4; ++l)
        n += covered(l);
    return n;
}

Rasterizer::Rasterizer(int width, int height)
    : _width(width), _height(height)
{
    WC3D_ASSERT(width > 0 && height > 0);
}

void
Rasterizer::rasterize(const TriangleSetup &tri, QuadBatch &out)
{
    rasterize(tri, [&out](const RasterQuad &q) { out.append(q); });
}

void
Rasterizer::rasterizeTile(const TriangleSetup &tri, int x0, int y0,
                          int x1, int y1, QuadBatch &out)
{
    rasterizeTile(tri, x0, y0, x1, y1,
                  [&out](const RasterQuad &q) { out.append(q); });
}

bool
Rasterizer::tileOverlaps(const TriangleSetup &tri, int x, int y, int size)
{
    // Sample positions are pixel centers: the tile spans centers
    // [x+0.5, x+size-0.5] in each axis. If the maximum of any edge
    // function over that rectangle is negative the tile is fully
    // outside that edge.
    double x0 = x + 0.5;
    double y0 = y + 0.5;
    double x1 = x + size - 0.5;
    double y1 = y + size - 0.5;
    for (const auto &e : tri.edges) {
        if (e.maxOverRect(x0, y0, x1, y1) < 0.0)
            return false;
    }
    return true;
}

bool
Rasterizer::evaluateQuad(const TriangleSetup &tri, int qx, int qy,
                         RasterQuad &quad) const
{
    quad.x = qx;
    quad.y = qy;
    quad.coverage = 0;
    static const int offs[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
    for (int lane = 0; lane < 4; ++lane) {
        int px = qx + offs[lane][0];
        int py = qy + offs[lane][1];
        double sx = px + 0.5;
        double sy = py + 0.5;

        bool inside = px < _width && py < _height &&
                      px >= tri.minX && px <= tri.maxX &&
                      py >= tri.minY && py <= tri.maxY;
        if (inside) {
            for (const auto &e : tri.edges) {
                if (!e.covers(e.eval(sx, sy))) {
                    inside = false;
                    break;
                }
            }
        }
        // Barycentrics and depth are computed for every lane (helper
        // lanes need them for derivative-correct shading).
        tri.barycentrics(sx, sy, quad.lambda[lane]);
        quad.z[lane] = clampf(tri.interpolateZ(quad.lambda[lane]),
                              0.0f, 1.0f);
        if (inside)
            quad.coverage |= static_cast<std::uint8_t>(1u << lane);
    }
    return quad.coverage != 0;
}

} // namespace wc3d::raster
