#include "raster/hz.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/prof.hh"

namespace wc3d::raster {

HierarchicalZ::HierarchicalZ(int width, int height)
    : _width(width), _height(height),
      _tilesX((width + kTileDim - 1) / kTileDim),
      _tilesY((height + kTileDim - 1) / kTileDim),
      _quadsX((width + 1) / 2), _quadsY((height + 1) / 2),
      _tileMax(static_cast<std::size_t>(_tilesX) * _tilesY, 1.0f),
      _tileMin(static_cast<std::size_t>(_tilesX) * _tilesY, 1.0f),
      _tileDirty(static_cast<std::size_t>(_tilesX) * _tilesY, 0),
      _quadMax(static_cast<std::size_t>(_quadsX) * _quadsY, 1.0f),
      _quadMin(static_cast<std::size_t>(_quadsX) * _quadsY, 1.0f)
{
    WC3D_ASSERT(width > 0 && height > 0);
}

void
HierarchicalZ::clear(float depth)
{
    WC3D_PROF_SCOPE("hz.clear");
    std::fill(_tileMax.begin(), _tileMax.end(), depth);
    std::fill(_tileMin.begin(), _tileMin.end(), depth);
    std::fill(_tileDirty.begin(), _tileDirty.end(), 0);
    std::fill(_quadMax.begin(), _quadMax.end(), depth);
    std::fill(_quadMin.begin(), _quadMin.end(), depth);
}

int
HierarchicalZ::tileIndex(int x, int y) const
{
    int tx = x / kTileDim;
    int ty = y / kTileDim;
    WC3D_ASSERT(tx >= 0 && tx < _tilesX && ty >= 0 && ty < _tilesY);
    return ty * _tilesX + tx;
}

int
HierarchicalZ::quadIndex(int x, int y) const
{
    int qx = x / 2;
    int qy = y / 2;
    WC3D_ASSERT(qx >= 0 && qx < _quadsX && qy >= 0 && qy < _quadsY);
    return qy * _quadsX + qx;
}

void
HierarchicalZ::refreshTile(int tile, int tx, int ty)
{
    float tile_max = 0.0f;
    float tile_min = 1.0f;
    int qx0 = tx * kTileDim / 2;
    int qy0 = ty * kTileDim / 2;
    int qx1 = std::min(qx0 + kTileDim / 2, _quadsX);
    int qy1 = std::min(qy0 + kTileDim / 2, _quadsY);
    for (int qy = qy0; qy < qy1; ++qy) {
        for (int qx = qx0; qx < qx1; ++qx) {
            std::size_t qi = static_cast<std::size_t>(qy) * _quadsX + qx;
            tile_max = std::max(tile_max, _quadMax[qi]);
            tile_min = std::min(tile_min, _quadMin[qi]);
        }
    }
    _tileMax[static_cast<std::size_t>(tile)] = tile_max;
    _tileMin[static_cast<std::size_t>(tile)] = tile_min;
    _tileDirty[static_cast<std::size_t>(tile)] = 0;
}

float
HierarchicalZ::tileMax(int x, int y)
{
    int tile = tileIndex(x, y);
    if (_tileDirty[static_cast<std::size_t>(tile)])
        refreshTile(tile, x / kTileDim, y / kTileDim);
    return _tileMax[static_cast<std::size_t>(tile)];
}

bool
HierarchicalZ::testQuad(int x, int y, float quad_z_min, HzStats &stats)
{
    ++stats.quadsTested;
    if (quad_z_min > tileMax(x, y)) {
        ++stats.quadsCulled;
        return false;
    }
    return true;
}

float
HierarchicalZ::tileMin(int x, int y)
{
    int tile = tileIndex(x, y);
    if (_tileDirty[static_cast<std::size_t>(tile)])
        refreshTile(tile, x / kTileDim, y / kTileDim);
    return _tileMin[static_cast<std::size_t>(tile)];
}

HzResult
HierarchicalZ::testQuadRange(int x, int y, float quad_z_min,
                             float quad_z_max, HzStats &stats)
{
    ++stats.quadsTested;
    if (quad_z_min > tileMax(x, y)) {
        ++stats.quadsCulled;
        return HzResult::Culled;
    }
    if (quad_z_max < tileMin(x, y)) {
        ++stats.quadsAccepted;
        return HzResult::Accepted;
    }
    return HzResult::Ambiguous;
}

void
HierarchicalZ::updateQuad(int x, int y, float quad_z_max)
{
    std::size_t qi = static_cast<std::size_t>(quadIndex(x, y));
    if (_quadMax[qi] != quad_z_max) {
        _quadMax[qi] = quad_z_max;
        _tileDirty[static_cast<std::size_t>(tileIndex(x, y))] = 1;
    }
}

void
HierarchicalZ::updateQuadRange(int x, int y, float quad_z_min,
                               float quad_z_max)
{
    std::size_t qi = static_cast<std::size_t>(quadIndex(x, y));
    if (_quadMax[qi] != quad_z_max || _quadMin[qi] != quad_z_min) {
        _quadMax[qi] = quad_z_max;
        _quadMin[qi] = std::min(_quadMin[qi], quad_z_min);
        _tileDirty[static_cast<std::size_t>(tileIndex(x, y))] = 1;
    }
}

std::uint64_t
HierarchicalZ::storageBytes() const
{
    // On-die cost: the min and max tile arrays. The per-quad feedback
    // stores are simulation bookkeeping standing in for the incremental
    // update path of real hardware, not on-die SRAM.
    return (_tileMax.size() + _tileMin.size()) * sizeof(float);
}

} // namespace wc3d::raster
