#include "raster/setup.hh"

#include <algorithm>
#include <cmath>

namespace wc3d::raster {

TriangleSetup
setupTriangle(const geom::ScreenTriangle &tri, int width, int height)
{
    TriangleSetup s;
    s.v[0] = tri.v[0];
    s.v[1] = tri.v[1];
    s.v[2] = tri.v[2];

    // Edge i runs from vertex i to vertex i+1; the value of edge i at
    // the opposite vertex (i+2) equals twice the signed area.
    s.edges[0] = makeEdge(tri.v[0].x, tri.v[0].y, tri.v[1].x, tri.v[1].y);
    s.edges[1] = makeEdge(tri.v[1].x, tri.v[1].y, tri.v[2].x, tri.v[2].y);
    s.edges[2] = makeEdge(tri.v[2].x, tri.v[2].y, tri.v[0].x, tri.v[0].y);

    double area2 = s.edges[0].eval(tri.v[2].x, tri.v[2].y);
    if (area2 == 0.0)
        return s; // degenerate
    if (area2 < 0.0) {
        for (auto &e : s.edges) {
            e.a = -e.a;
            e.b = -e.b;
            e.c = -e.c;
        }
        area2 = -area2;
    }
    // Fill-rule classification must happen after orientation is fixed.
    for (auto &e : s.edges)
        e.topLeft = (e.a > 0.0) || (e.a == 0.0 && e.b > 0.0);
    s.area2 = area2;

    float min_x = std::min({tri.v[0].x, tri.v[1].x, tri.v[2].x});
    float max_x = std::max({tri.v[0].x, tri.v[1].x, tri.v[2].x});
    float min_y = std::min({tri.v[0].y, tri.v[1].y, tri.v[2].y});
    float max_y = std::max({tri.v[0].y, tri.v[1].y, tri.v[2].y});

    // Pixel centers at (i + 0.5): the first center >= min is
    // floor(min - 0.5) + 1 == floor(min + 0.5) for non-integral values.
    s.minX = std::max(0, static_cast<int>(std::floor(min_x - 0.5f)));
    s.minY = std::max(0, static_cast<int>(std::floor(min_y - 0.5f)));
    s.maxX = std::min(width - 1, static_cast<int>(std::ceil(max_x)));
    s.maxY = std::min(height - 1, static_cast<int>(std::ceil(max_y)));
    if (s.minX > s.maxX || s.minY > s.maxY)
        return s; // scissored out entirely

    s.valid = true;
    return s;
}

} // namespace wc3d::raster
