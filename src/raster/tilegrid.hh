/**
 * @file
 * Screen-space tile grid for the tile-parallel back-end. The screen is
 * partitioned into square tiles whose edge is a multiple of the
 * rasterizer's 16x16 upper traversal tile, so every upper tile — and
 * therefore every 8x8 lower tile, HZ tile, framebuffer block and 2x2
 * quad — lies entirely inside exactly one screen tile. A worker that
 * owns a tile owns all pixel-addressed pipeline state under it
 * exclusively (see DESIGN.md "Tile-parallel pipeline").
 */

#ifndef WC3D_RASTER_TILEGRID_HH
#define WC3D_RASTER_TILEGRID_HH

#include <cstdint>

#include "raster/rasterizer.hh"

namespace wc3d::raster {

/**
 * Resolve the screen-tile edge length in pixels: @p configured when
 * positive, else the WC3D_TILE_SIZE environment knob, else 32. The
 * result is clamped to at least kUpperTile and rounded up to a multiple
 * of it (the ownership argument above requires the alignment).
 */
int resolveTileSize(int configured);

/** Pixel bounds of one screen tile: [x0, x1) x [y0, y1). */
struct TileRect
{
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;
};

/**
 * Key encoding the position of a quad at pixel (@p x, @p y) in the
 * rasterizer's traversal order: upper tiles row-major, lower tiles
 * row-major within the upper tile, quads row-major within the lower
 * tile. For one triangle, sorting its quads by this key reproduces the
 * exact order the full-screen rasterize() walk emits them — which is
 * how the stats-merge phase re-interleaves per-tile quad streams into
 * global submission order (per-tile streams are already ascending, so
 * this is a k-way merge of sorted runs).
 */
inline std::uint32_t
traversalKey(int x, int y)
{
    auto ux = static_cast<std::uint32_t>(x) / kUpperTile;
    auto uy = static_cast<std::uint32_t>(y) / kUpperTile;
    std::uint32_t inner =
        ((static_cast<std::uint32_t>(y) >> 3) & 1u) << 5 |
        ((static_cast<std::uint32_t>(x) >> 3) & 1u) << 4 |
        ((static_cast<std::uint32_t>(y) >> 1) & 3u) << 2 |
        ((static_cast<std::uint32_t>(x) >> 1) & 3u);
    return uy << 18 | ux << 6 | inner;
}

/** The screen partition. Tiles are indexed row-major. */
class TileGrid
{
  public:
    /** @param tile_size must already be resolved (see resolveTileSize). */
    TileGrid(int width, int height, int tile_size);

    int tileSize() const { return _tileSize; }
    int tilesX() const { return _tilesX; }
    int tilesY() const { return _tilesY; }
    int tiles() const { return _tilesX * _tilesY; }

    int
    index(int tx, int ty) const
    {
        return ty * _tilesX + tx;
    }

    /** Pixel bounds of tile @p tile (may extend past the screen edge;
     *  traversal clips against the triangle's scissored bbox). */
    TileRect
    rect(int tile) const
    {
        int tx = tile % _tilesX;
        int ty = tile / _tilesX;
        return {tx * _tileSize, ty * _tileSize, (tx + 1) * _tileSize,
                (ty + 1) * _tileSize};
    }

    /** Inclusive tile-coordinate range for binning a primitive. */
    struct BinRange
    {
        int tx0 = 0;
        int ty0 = 0;
        int tx1 = -1;
        int ty1 = -1;
    };

    /**
     * Tiles overlapped by the (scissored, inclusive) pixel bounding box
     * [@p min_x, @p max_x] x [@p min_y, @p max_y]. Conservative: a tile
     * in the range may end up with no covered quads.
     */
    BinRange
    binRange(int min_x, int min_y, int max_x, int max_y) const
    {
        BinRange r;
        r.tx0 = min_x / _tileSize;
        r.ty0 = min_y / _tileSize;
        r.tx1 = max_x / _tileSize;
        r.ty1 = max_y / _tileSize;
        return r;
    }

  private:
    int _tileSize;
    int _tilesX;
    int _tilesY;
};

} // namespace wc3d::raster

#endif // WC3D_RASTER_TILEGRID_HH
