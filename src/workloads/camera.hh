/**
 * @file
 * Camera paths for the synthetic timedemos: a deterministic flythrough
 * on a ring through the scene with gentle bobbing and heading changes,
 * giving the frame-to-frame variability the paper observes ("the
 * interactive nature of games ... makes the number of batches per frame
 * highly variable over time", Fig. 1).
 */

#ifndef WC3D_WORKLOADS_CAMERA_HH
#define WC3D_WORKLOADS_CAMERA_HH

#include "common/vecmath.hh"

namespace wc3d::workloads {

/** Deterministic flythrough camera. */
class CameraPath
{
  public:
    /**
     * @param ring_radius radius of the path through the world
     * @param speed       radians of ring angle per frame
     * @param eye_height  base camera height
     */
    CameraPath(float ring_radius, float speed, float eye_height);

    /** Camera position at @p frame. */
    Vec3 position(int frame) const;

    /** Look-at target at @p frame (ahead on the path, with wander). */
    Vec3 target(int frame) const;

    /** View matrix at @p frame. */
    Mat4 view(int frame) const;

    /** Projection for the paper's 1024x768-style 4:3 frustum. */
    static Mat4 projection(float aspect = 4.0f / 3.0f,
                           float fovy_deg = 70.0f, float znear = 0.5f,
                           float zfar = 400.0f);

  private:
    float _radius;
    float _speed;
    float _height;
};

} // namespace wc3d::workloads

#endif // WC3D_WORKLOADS_CAMERA_HH
