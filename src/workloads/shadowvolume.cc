#include "workloads/shadowvolume.hh"

namespace wc3d::workloads {

std::vector<VolumePlacement>
planShadowVolumes(int count, int light, Vec3 eye, Vec3 forward, Rng &rng)
{
    std::vector<VolumePlacement> out;
    out.reserve(static_cast<std::size_t>(count));
    Vec3 fwd = forward.normalized();
    Vec3 side = fwd.cross({0, 1, 0}).normalized();
    // Each light comes from a different overhead direction.
    Vec3 light_dir =
        Vec3{0.4f * static_cast<float>(light % 3 - 1), -1.0f,
             0.3f * static_cast<float>((light + 1) % 3 - 1)}
            .normalized();

    for (int i = 0; i < count; ++i) {
        VolumePlacement v;
        // Silhouettes hang in front of the camera at varying depths and
        // lateral offsets so the extruded slabs cross the frustum.
        float depth = 1.5f + rng.nextRange(0.0f, 4.0f);
        float lateral = rng.nextRange(-6.0f, 6.0f);
        float height = rng.nextRange(0.0f, 4.0f);
        v.base = eye + fwd * depth + side * lateral +
                 Vec3{0, height, 0};
        v.extrude = (light_dir * -1.0f +
                     Vec3{rng.nextRange(-0.2f, 0.2f), 0,
                          rng.nextRange(-0.2f, 0.2f)})
                        .normalized() * -1.0f;
        v.width = rng.nextRange(1.5f, 3.5f);
        v.length = rng.nextRange(6.0f, 16.0f);
        out.push_back(v);
    }
    return out;
}

} // namespace wc3d::workloads
