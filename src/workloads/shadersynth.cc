#include "workloads/shadersynth.hh"

#include <cmath>

#include "common/log.hh"
#include "common/strutil.hh"

namespace wc3d::workloads {

std::string
synthVertexProgram(int total_instructions)
{
    WC3D_ASSERT(total_instructions >= 9);
    std::string out = "!!VP synthesized\n";
    // c4 light dir, c5 ambient, c6/c7 filler params.
    out += "CONST c4 = 0.577 0.577 0.577 0\n";
    out += "CONST c5 = 0.25 0.25 0.25 1\n";
    out += "CONST c6 = 0.5 0.25 0.125 1\n";
    out += "CONST c7 = 1.01 0.99 1.02 1\n";

    // Core: 4 transform + uv + 3-op diffuse lighting = 8 instructions.
    out += "DP4 o0.x, v0, c0;\n";
    out += "DP4 o0.y, v0, c1;\n";
    out += "DP4 o0.z, v0, c2;\n";
    out += "DP4 o0.w, v0, c3;\n";
    out += "MOV o1, v2;\n";
    out += "DP3 r0, v1, c4;\n";
    out += "MAX r0, r0, c5;\n";

    // Filler: chained ops on r1 feeding the final colour so nothing is
    // dead code; counts are exact.
    int filler = total_instructions - 9;
    out += "MOV r1, v3;\n";
    for (int i = 0; i < filler; ++i) {
        switch (i % 4) {
          case 0:
            out += "MUL r1, r1, c7;\n";
            break;
          case 1:
            out += "MAD r1, r1, c6, c5;\n";
            break;
          case 2:
            out += "MIN r1, r1, c7;\n";
            break;
          case 3:
            out += "ADD r1, r1, c6;\n";
            break;
        }
    }
    out += "MUL o2, r1, r0;\n";
    return out;
}

std::string
synthFragmentProgram(const FragmentSpec &spec)
{
    // Minimum: the TEX (or one MOV when untextured) instructions, the
    // final combine, and the SUB+KIL pair when alpha testing.
    int min_len = std::max(1, spec.texInstructions) + 1 +
                  (spec.alphaKill ? 2 : 0);
    WC3D_ASSERT(spec.totalInstructions >= min_len);
    WC3D_ASSERT(spec.texInstructions <= 8);

    std::string out = "!!FP synthesized\n";
    out += "CONST c0 = 0.6 0.6 0.6 1\n";
    out += "CONST c1 = 0.3 0.3 0.3 0.45\n"; // alpha-test threshold in w
    out += format("CONST c2 = %.3f %.3f 1 1\n", spec.uvScale,
                  spec.uvScale);

    int budget = spec.totalInstructions - min_len; // filler slots
    int emitted = 0;

    if (spec.texInstructions == 0) {
        out += "MOV r0, v1;\n";
        ++emitted;
    } else {
        for (int t = 0; t < spec.texInstructions; ++t) {
            if (t == 1 && budget > 0) {
                // Detail layer at a scaled coordinate when there is
                // instruction budget for the extra MUL.
                out += "MUL r7, v0, c2;\n";
                ++emitted;
                --budget;
                out += "TEX r1, r7, tex[1];\n";
            } else {
                out += format("TEX r%d, v0, tex[%d];\n",
                              t == 0 ? 0 : (t % 6) + 1, t);
            }
            ++emitted;
        }
    }

    if (spec.alphaKill) {
        out += "SUB r6, r0, c1;\n";
        out += "KIL r6.w;\n";
        emitted += 2;
    }

    for (int i = 0; i < budget; ++i) {
        switch (i % 4) {
          case 0:
            out += "MAD r0, r0, c0, c1;\n";
            break;
          case 1:
            out += "MUL r2, r0, v1;\n";
            break;
          case 2:
            out += "ADD r0, r0, r2;\n";
            break;
          case 3:
            out += "MUL r0, r0, c0;\n";
            break;
        }
        ++emitted;
    }

    // Final combine writes the colour output.
    if (spec.texInstructions >= 2) {
        out += "MUL o0, r0, r1;\n";
    } else {
        out += "MUL o0, r0, v1;\n";
    }
    ++emitted;
    WC3D_ASSERT(emitted == spec.totalInstructions);
    return out;
}

std::vector<FragmentSpec>
planMaterialMix(int count, double fs_target, double tex_target,
                double alpha_share, Rng &rng)
{
    WC3D_ASSERT(count > 0);
    std::vector<FragmentSpec> specs(static_cast<std::size_t>(count));

    // Dithered rounding: the first ceil-count materials take the upper
    // value so the equal-weight mean lands on the target.
    auto dithered = [count](double target) {
        std::vector<int> values(static_cast<std::size_t>(count));
        int lo = static_cast<int>(std::floor(target));
        int ceil_count = static_cast<int>(
            std::lround((target - lo) * count));
        for (int i = 0; i < count; ++i)
            values[static_cast<std::size_t>(i)] =
                i < ceil_count ? lo + 1 : lo;
        return values;
    };

    std::vector<int> totals = dithered(fs_target);
    std::vector<int> texes = dithered(tex_target);
    // Decorrelate totals and tex counts a little.
    for (int i = count - 1; i > 0; --i) {
        std::uint32_t j = rng.nextBounded(static_cast<std::uint32_t>(i + 1));
        std::swap(texes[static_cast<std::size_t>(i)],
                  texes[static_cast<std::size_t>(j)]);
    }

    int alpha_count = static_cast<int>(std::lround(alpha_share * count));
    for (int i = 0; i < count; ++i) {
        FragmentSpec &s = specs[static_cast<std::size_t>(i)];
        s.texInstructions = std::min(texes[static_cast<std::size_t>(i)], 8);
        s.alphaKill = i < alpha_count;
        int min_len = std::max(1, s.texInstructions) + 1 +
                      (s.alphaKill ? 2 : 0);
        s.totalInstructions =
            std::max(totals[static_cast<std::size_t>(i)], min_len);
        s.uvScale = 1.0f + 0.5f * rng.nextFloat();
    }
    return specs;
}

} // namespace wc3d::workloads
