#include "workloads/camera.hh"

#include <cmath>

namespace wc3d::workloads {

CameraPath::CameraPath(float ring_radius, float speed, float eye_height)
    : _radius(ring_radius), _speed(speed), _height(eye_height)
{
}

Vec3
CameraPath::position(int frame) const
{
    float a = _speed * static_cast<float>(frame);
    // Slight radial wander + head bob.
    float r = _radius * (1.0f + 0.08f * std::sin(a * 2.7f));
    float h = _height + 0.4f * std::sin(a * 5.1f);
    return {r * std::cos(a), h, r * std::sin(a)};
}

Vec3
CameraPath::target(int frame) const
{
    float a = _speed * static_cast<float>(frame);
    // Look ahead along the path with periodic glances sideways/up.
    float ahead = a + 0.25f + 0.15f * std::sin(a * 1.3f);
    float r = _radius * (1.0f + 0.08f * std::sin(ahead * 2.7f));
    float h = _height + 1.2f * std::sin(a * 0.9f);
    return {r * std::cos(ahead), h, r * std::sin(ahead)};
}

Mat4
CameraPath::view(int frame) const
{
    return Mat4::lookAt(position(frame), target(frame), {0, 1, 0});
}

Mat4
CameraPath::projection(float aspect, float fovy_deg, float znear,
                       float zfar)
{
    return Mat4::perspective(radians(fovy_deg), aspect, znear, zfar);
}

} // namespace wc3d::workloads
