/**
 * @file
 * The twelve synthetic timedemos standing in for the paper's Table I
 * workloads, plus the registry used by examples, tests and benches.
 */

#ifndef WC3D_WORKLOADS_GAMES_HH
#define WC3D_WORKLOADS_GAMES_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/timedemo.hh"

namespace wc3d::workloads {

/** All twelve timedemo ids, in the paper's Table I order. */
const std::vector<std::string> &allTimedemoIds();

/** The three OpenGL workloads used for microarchitectural tables
 *  (UT2004/Primeval, Doom3/trdemo2, Quake4/demo4). */
const std::vector<std::string> &simulatedTimedemoIds();

/** @return true when @p id names a known timedemo. */
bool isTimedemoId(const std::string &id);

/** Profile for @p id; fatal() on unknown ids. */
const GameProfile &gameProfile(const std::string &id);

/** Instantiate the timedemo for @p id; fatal() on unknown ids. */
std::unique_ptr<Timedemo> makeTimedemo(const std::string &id);

} // namespace wc3d::workloads

#endif // WC3D_WORKLOADS_GAMES_HH
