#include "workloads/timedemo.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/prof.hh"
#include "common/strutil.hh"
#include "workloads/shadowvolume.hh"

namespace wc3d::workloads {

namespace {

/** Orthonormal basis with +Z mapped to @p dir (for volume slabs). */
Mat4
basisFromZ(Vec3 dir)
{
    Vec3 z = dir.normalized();
    Vec3 up = std::fabs(z.y) < 0.9f ? Vec3{0, 1, 0} : Vec3{1, 0, 0};
    Vec3 x = up.cross(z).normalized();
    Vec3 y = z.cross(x);
    Mat4 m = Mat4::identity();
    m.m[0][0] = x.x;
    m.m[0][1] = x.y;
    m.m[0][2] = x.z;
    m.m[1][0] = y.x;
    m.m[1][1] = y.y;
    m.m[1][2] = y.z;
    m.m[2][0] = z.x;
    m.m[2][1] = z.y;
    m.m[2][2] = z.z;
    return m;
}

/** Fraction of batches that must be strips/fans to reach a share of
 *  primitives (strips emit ~3x the primitives per index of lists). */
double
batchShareForPrimShare(double prim_share)
{
    if (prim_share <= 0.0)
        return 0.0;
    return prim_share / (3.0 - 2.0 * prim_share);
}

frag::DepthStencilState
depthLEqualWrite()
{
    frag::DepthStencilState ds;
    ds.depthTest = true;
    ds.depthFunc = frag::CompareFunc::LEqual;
    ds.depthWrite = true;
    return ds;
}

} // namespace

Timedemo::Timedemo(GameProfile profile)
    : _profile(std::move(profile)),
      _camera(_profile.worldRadius * 0.85f, 2.0f * kPi / 600.0f, 2.5f)
{
}

void
Timedemo::setup(api::Device &device)
{
    WC3D_ASSERT(!_isSetup);
    _isSetup = true;
    const GameProfile &p = _profile;
    Rng rng(p.seed);

    // ---- Derived batch composition ---------------------------------
    int lights = p.stencilShadows ? p.lightPasses : 0;
    int vol_batches = lights * p.volumesPerLight;
    double ts = p.translucentShare;
    double passes_per_opaque = p.zPrepass ? (1.0 + p.lightPasses) : 1.0;
    double batches_per_object =
        (1.0 - ts) * passes_per_opaque + ts * 1.0;
    double target_objects =
        (static_cast<double>(p.batchesPerFrame) - vol_batches) /
            batches_per_object -
        6.0; // backdrop walls submitted every frame
    if (target_objects < 8.0)
        target_objects = 8.0;

    float r_in = p.worldRadius * 0.55f;
    float r_out = p.worldRadius * 1.15f;

    // ---- Shader instruction targets ---------------------------------
    // The profile's fs targets are the batch-weighted average over ALL
    // batches, including depth-only prepass and shadow-volume batches
    // (1 instruction, 0 textures); solve for the material-pass target.
    double depth_only_batches =
        p.zPrepass ? (1.0 - ts) * target_objects + vol_batches : 0.0;
    double material_batches =
        p.batchesPerFrame - depth_only_batches;
    double m_fs = p.fsInstructions;
    double m_tex = p.fsTexInstructions;
    if (depth_only_batches > 0.0 && material_batches > 0.0) {
        m_fs = (p.fsInstructions * p.batchesPerFrame -
                depth_only_batches) /
               material_batches;
        m_tex = p.fsTexInstructions * p.batchesPerFrame /
                material_batches;
    }
    m_fs = std::max(m_fs, 2.0);
    m_tex = std::clamp(m_tex, 0.0, 8.0);

    // ---- Programs ----------------------------------------------------
    _vsMain = device.createProgram(shader::ProgramKind::Vertex,
                                   synthVertexProgram(p.vsInstructions));
    if (p.vsInstructionsRegion2 > 0) {
        _vsRegion2 = device.createProgram(
            shader::ProgramKind::Vertex,
            synthVertexProgram(p.vsInstructionsRegion2));
    }
    _fsDepthOnly = device.createProgram(shader::ProgramKind::Fragment,
                                        "!!FP depthonly\nMOV o0, v1;\n");

    // ---- Materials ----------------------------------------------------
    auto specs = planMaterialMix(p.materialCount, m_fs, m_tex,
                                 p.alphaTestShare, rng);
    // Texture pool shared across materials.
    std::vector<std::uint32_t> pool;
    int pool_size = std::max(8, p.materialCount * 3);
    for (int t = 0; t < pool_size; ++t) {
        api::TextureSpec spec;
        spec.kind = (t % 3 == 0) ? api::TextureSpec::Kind::Checker
                                 : api::TextureSpec::Kind::Noise;
        spec.size = p.textureSize;
        spec.cell = p.textureSize / 8;
        spec.seed = p.seed * 977 + static_cast<std::uint64_t>(t);
        if (t % 3 == 1) {
            // Alpha-varying textures for alpha-tested materials (DXT5
            // keeps smooth alpha; DXT1 would punch it to 1 bit).
            spec.alphaNoise = true;
            spec.format = tex::TexFormat::DXT5;
        }
        spec.colorA = {static_cast<std::uint8_t>(120 + 10 * (t % 9)),
                       static_cast<std::uint8_t>(100 + 13 * (t % 7)),
                       static_cast<std::uint8_t>(90 + 17 * (t % 5)), 255};
        spec.colorB = {40, 44, 52, 255};
        spec.format = p.texFormat;
        pool.push_back(device.createTexture(spec));
    }

    int translucent_count =
        static_cast<int>(std::lround(ts * p.materialCount));
    for (int m = 0; m < p.materialCount; ++m) {
        MaterialIds mat;
        mat.spec = specs[static_cast<std::size_t>(m)];
        mat.translucent =
            m >= p.materialCount - translucent_count;
        mat.program = device.createProgram(
            shader::ProgramKind::Fragment,
            synthFragmentProgram(mat.spec));
        for (int u = 0; u < std::max(1, mat.spec.texInstructions); ++u) {
            int idx = (m * 3 + u * 5) % pool_size;
            // Alpha-test materials sample the alpha-varying (DXT5
            // noise) pool entries at slot 0 so KIL sees real variation.
            if (mat.spec.alphaKill && u == 0 && idx % 3 != 1)
                idx = (idx / 3) * 3 + 1;
            mat.textures.push_back(pool[static_cast<std::size_t>(idx)]);
        }
        _materials.push_back(std::move(mat));
    }

    // ---- Meshes --------------------------------------------------------
    // Topology shares are over primitives; convert to batch shares
    // (strips/fans emit ~3x the primitives per index of lists).
    double strip_batches = batchShareForPrimShare(p.stripPrimShare);
    double fan_batches = batchShareForPrimShare(p.fanPrimShare);

    std::vector<int> list_pool;
    std::vector<int> strip_pool;
    std::vector<int> fan_pool;
    int strip_variants = strip_batches > 0.0
        ? std::max(1, static_cast<int>(
              std::lround(strip_batches * p.meshVariants)))
        : 0;
    int fan_variants = fan_batches > 0.0
        ? std::max(1, static_cast<int>(
              std::lround(fan_batches * p.meshVariants)))
        : 0;

    for (int v = 0; v < p.meshVariants; ++v) {
        // Size jitter in [0.7, 1.3] with mean 1 (dithered).
        float f = 0.7f + 0.6f * static_cast<float>(v) /
                             std::max(1, p.meshVariants - 1);
        int target = std::max(
            3, static_cast<int>(std::lround(p.indicesPerBatch * f)));

        Mesh mesh;
        if (v < strip_variants) {
            // Strip indices ~ 2*(qx+1)*qy: pick a square-ish grid.
            int side = std::max(
                1, static_cast<int>(std::sqrt(target / 2.0)));
            mesh = makeTerrain(side, p.wallScale * 0.3f,
                               p.seed + static_cast<std::uint64_t>(v),
                               /*strip=*/true);
            strip_pool.push_back(v);
        } else if (v < strip_variants + fan_variants) {
            mesh = makeDiscFan(std::max(3, target - 2), p.uvScale);
            fan_pool.push_back(v);
        } else {
            int quads = std::max(1, target / 6);
            int qx = std::max(1, static_cast<int>(std::sqrt(quads)));
            int qy = std::max(1, quads / qx);
            if (v % 5 == 4) {
                mesh = makeBox(std::max(1, qx / 2),
                               {0.5f, 0.5f, 0.5f});
            } else {
                mesh = makeGridPatch(qx, qy, p.uvScale);
            }
            padIndices(mesh, target);
            list_pool.push_back(v);
        }
        mesh.indices.type = p.indexType;

        _meshTopology.push_back(mesh.topology);
        _meshIndexCounts.push_back(
            static_cast<std::uint32_t>(mesh.indices.indices.size()));
        auto vb = device.createVertexBuffer(std::move(mesh.vertices));
        auto ib = device.createIndexBuffer(std::move(mesh.indices));
        _meshIds.emplace_back(vb, ib);
    }
    WC3D_ASSERT(!list_pool.empty());

    // Shadow-volume slab (unit: base at origin, extruded along +Z).
    if (p.stencilShadows) {
        Mesh slab = makeShadowVolumeSlab({0, 0, 0}, {0, 0, 1}, 1.0f, 1.0f);
        slab.indices.type = p.indexType;
        _volumeIndexCount =
            static_cast<std::uint32_t>(slab.indices.indices.size());
        auto vb = device.createVertexBuffer(std::move(slab.vertices));
        auto ib = device.createIndexBuffer(std::move(slab.indices));
        _volumeMesh = {vb, ib};
    }

    // ---- Object placement -----------------------------------------------
    auto pick_mesh = [&](Rng &r) {
        double u = r.nextFloat();
        const std::vector<int> *pool = &list_pool;
        if (u < strip_batches && !strip_pool.empty()) {
            pool = &strip_pool;
        } else if (u < strip_batches + fan_batches && !fan_pool.empty()) {
            pool = &fan_pool;
        }
        return (*pool)[r.nextBounded(
            static_cast<std::uint32_t>(pool->size()))];
    };
    float ring_radius = p.worldRadius * 0.85f;
    for (int i = 0; i < p.objectCount; ++i) {
        ObjectInstance obj;
        obj.mesh = pick_mesh(rng);
        obj.material = static_cast<int>(rng.nextBounded(
            static_cast<std::uint32_t>(p.materialCount)));
        bool translucent =
            _materials[static_cast<std::size_t>(obj.material)]
                .translucent;
        float angle = rng.nextRange(0.0f, 2.0f * kPi);
        // Translucent surfaces (glass, particles, decals) float in the
        // walkway space where they stay visible in front of the walls;
        // opaque structure fills the annulus.
        // Opaque structure keeps a clear corridor around the camera
        // ring (rooms have walkable space); translucent surfaces float
        // in that walkway.
        float radius = 0.0f;
        if (translucent) {
            radius = ring_radius * rng.nextRange(0.82f, 1.18f);
        } else {
            do {
                radius = rng.nextRange(r_in, r_out);
            } while (p.corridorWidth > 0.0f &&
                     std::fabs(radius - ring_radius) < p.corridorWidth);
        }
        float height = translucent ? rng.nextRange(0.5f, 4.5f)
                                   : rng.nextRange(-1.0f, 7.0f);
        obj.position = {radius * std::cos(angle), height,
                        radius * std::sin(angle)};
        obj.scale = p.wallScale * rng.nextRange(0.6f, 1.6f) *
                    (translucent ? 1.1f : 1.0f);
        bool strip_mesh =
            _meshTopology[static_cast<std::size_t>(obj.mesh)] ==
            geom::PrimitiveType::TriangleStrip;
        obj.horizontal = strip_mesh ||
                         rng.nextFloat() < p.horizontalShare;
        if (rng.nextFloat() < p.wallFacingBias) {
            // Face the ring walkway: normal points towards the camera
            // ring at this angle.
            obj.yaw = angle + kPi;
        } else {
            obj.yaw = rng.nextRange(0.0f, 2.0f * kPi);
        }
        _objects.push_back(obj);
    }

    // Backdrop: a ring of large far walls that keep the screen covered
    // (games always render something at every pixel; the open annulus
    // alone would leave void).
    const int kBackdrops = 10;
    for (int b = 0; b < kBackdrops; ++b) {
        ObjectInstance obj;
        obj.mesh = list_pool[static_cast<std::size_t>(
            b % static_cast<int>(list_pool.size()))];
        obj.material = static_cast<int>(rng.nextBounded(
            static_cast<std::uint32_t>(p.materialCount)));
        if (_materials[static_cast<std::size_t>(obj.material)]
                .translucent) {
            obj.material = 0;
        }
        float angle = 2.0f * kPi * static_cast<float>(b) / kBackdrops;
        obj.position = {r_out * 1.15f * std::cos(angle), 3.0f,
                        r_out * 1.15f * std::sin(angle)};
        obj.yaw = angle + kPi; // face the ring
        obj.scale = p.worldRadius * 1.2f;
        obj.backdrop = true;
        _objects.push_back(obj);
    }

    // ---- Draw-distance calibration ---------------------------------
    // Binary-search the cull radius so the average visible object count
    // over sampled camera positions matches the batch target.
    auto avg_visible = [this, &p](float radius) {
        const int samples = 24;
        std::uint64_t total = 0;
        for (int s = 0; s < samples; ++s) {
            Vec3 eye = _camera.position(s * 37);
            Vec3 fwd = (_camera.target(s * 37) - eye).normalized();
            for (const ObjectInstance &o : _objects) {
                if (o.backdrop)
                    continue;
                Vec3 d = o.position - eye;
                float dist2 = d.dot(d);
                if (dist2 >= radius * radius)
                    continue;
                if (dist2 > 25.0f &&
                    d.dot(fwd) < p.coneCullDot * std::sqrt(dist2)) {
                    continue;
                }
                ++total;
            }
        }
        return static_cast<double>(total) / samples;
    };
    float lo = 1.0f;
    float hi = p.worldRadius * 2.5f;
    for (int iter = 0; iter < 24; ++iter) {
        float mid = 0.5f * (lo + hi);
        if (avg_visible(mid) < target_objects) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    _viewRadius = 0.5f * (lo + hi) * p.viewScale;
    if (avg_visible(p.worldRadius * 2.5f) <
        target_objects * 0.95) {
        warn("timedemo %s: object field too sparse for %d batches/frame",
             p.id.c_str(), p.batchesPerFrame);
    }
}

Mat4
Timedemo::modelMatrix(const ObjectInstance &obj) const
{
    Mat4 m = Mat4::translate(obj.position) * Mat4::rotateY(obj.yaw);
    if (obj.horizontal)
        m = m * Mat4::rotateX(-kPi * 0.5f);
    return m * Mat4::scale({obj.scale, obj.scale, obj.scale});
}

void
Timedemo::setMvp(api::Device &device, const Mat4 &mvp)
{
    // Constants c0..c3 are the matrix rows (DP4-friendly).
    for (int row = 0; row < 4; ++row) {
        device.setConstant(shader::ProgramKind::Vertex,
                           static_cast<std::uint32_t>(row),
                           {mvp.m[0][row], mvp.m[1][row], mvp.m[2][row],
                            mvp.m[3][row]});
    }
}

void
Timedemo::bindMaterial(api::Device &device, const MaterialIds &mat)
{
    device.bindProgram(shader::ProgramKind::Fragment, mat.program);
    tex::SamplerState ss;
    ss.filter = _profile.filter;
    ss.maxAniso = _profile.maxAniso;
    ss.lodBias = _profile.samplerLodBias;
    for (std::size_t u = 0; u < mat.textures.size(); ++u) {
        device.bindTexture(static_cast<std::uint32_t>(u),
                           mat.textures[u], ss);
    }
}

void
Timedemo::drawObject(api::Device &device, const ObjectInstance &obj,
                     const Mat4 &viewproj)
{
    setMvp(device, viewproj * modelMatrix(obj));
    for (int e = 0; e < _profile.extraStateCallsPerBatch; ++e) {
        device.setConstant(shader::ProgramKind::Fragment,
                           static_cast<std::uint32_t>(8 + e),
                           {1, 1, 1, 1});
    }
    auto mesh_idx = static_cast<std::size_t>(obj.mesh);
    device.draw(_meshIds[mesh_idx].first, _meshIds[mesh_idx].second, 0,
                _meshIndexCounts[mesh_idx],
                _meshTopology[mesh_idx] == geom::PrimitiveType::TriangleList
                    ? geom::PrimitiveType::TriangleList
                    : _meshTopology[mesh_idx]);
}

void
Timedemo::drawVolumes(api::Device &device, int frame, int light,
                      const Mat4 &viewproj, Vec3 eye, Vec3 forward)
{
    Rng rng(_profile.seed ^ (static_cast<std::uint64_t>(frame) << 20) ^
            static_cast<std::uint64_t>(light));
    auto volumes = planShadowVolumes(_profile.volumesPerLight, light, eye,
                                     forward, rng);
    for (const VolumePlacement &v : volumes) {
        Mat4 model = Mat4::translate(v.base) * basisFromZ(v.extrude) *
                     Mat4::scale({v.width, v.width, v.length});
        setMvp(device, viewproj * model);
        device.draw(_volumeMesh.first, _volumeMesh.second, 0,
                    _volumeIndexCount, geom::PrimitiveType::TriangleList);
    }
}

void
Timedemo::renderFrame(api::Device &device, int frame)
{
    WC3D_ASSERT(_isSetup && "call setup() first");
    const GameProfile &p = _profile;

    // Frame clear.
    api::ClearCmd clear;
    clear.colorValue = 0xff000000;
    device.clear(clear);

    Vec3 eye = _camera.position(frame);
    Vec3 fwd = (_camera.target(frame) - eye).normalized();
    Mat4 viewproj =
        CameraPath::projection() * _camera.view(frame);

    // Variable draw distance drives the Fig. 1 batch fluctuation.
    float fframe = static_cast<float>(frame);
    float osc = 0.6f * std::sin(fframe * 0.21f) +
                0.4f * std::sin(fframe * 0.047f);
    float r = _viewRadius *
              std::sqrt(std::max(
                  0.2f, 1.0f + static_cast<float>(p.batchJitter) * osc));

    _visible.clear();
    for (std::size_t i = 0; i < _objects.size(); ++i) {
        Vec3 d = _objects[i].position - eye;
        float dist2 = d.dot(d);
        if (_objects[i].backdrop) {
            // Backdrops: submitted whenever roughly ahead.
            if (d.dot(fwd) > -0.2f * std::sqrt(dist2))
                _visible.push_back(static_cast<int>(i));
            continue;
        }
        if (dist2 >= r * r)
            continue;
        // Coarse CPU cone cull (games' PVS/portal culling analogue):
        // close objects are always submitted.
        if (dist2 > 25.0f &&
            d.dot(fwd) < p.coneCullDot * std::sqrt(dist2)) {
            continue;
        }
        _visible.push_back(static_cast<int>(i));
    }
    // Material-sorted submission (fewer redundant binds, like engines
    // do); translucents drawn last, far to near.
    std::sort(_visible.begin(), _visible.end(), [this](int a, int b) {
        return _objects[static_cast<std::size_t>(a)].material <
               _objects[static_cast<std::size_t>(b)].material;
    });
    auto first_translucent = std::stable_partition(
        _visible.begin(), _visible.end(), [this](int i) {
            return !_materials[static_cast<std::size_t>(
                                   _objects[static_cast<std::size_t>(i)]
                                       .material)]
                        .translucent;
        });
    std::sort(first_translucent, _visible.end(), [this, eye](int a, int b) {
        Vec3 da = _objects[static_cast<std::size_t>(a)].position - eye;
        Vec3 db = _objects[static_cast<std::size_t>(b)].position - eye;
        return da.dot(da) > db.dot(db);
    });
    std::size_t opaque_count = static_cast<std::size_t>(
        std::distance(_visible.begin(), first_translucent));

    // Oblivion-style second region switches vertex programs mid-demo.
    std::uint32_t vs = _vsMain;
    if (_vsRegion2 && frame >= p.paperFrames / 2)
        vs = _vsRegion2;
    device.bindProgram(shader::ProgramKind::Vertex, vs);

    int last_material = -1;
    auto draw_opaque_pass = [&]() {
        last_material = -1;
        for (std::size_t k = 0; k < opaque_count; ++k) {
            const ObjectInstance &obj =
                _objects[static_cast<std::size_t>(_visible[k])];
            if (obj.material != last_material) {
                bindMaterial(
                    device,
                    _materials[static_cast<std::size_t>(obj.material)]);
                last_material = obj.material;
            }
            drawObject(device, obj, viewproj);
        }
    };

    if (p.zPrepass) {
        // Depth-only prepass: LEqual + write, colour masked.
        device.setDepthStencil(depthLEqualWrite());
        frag::BlendState masked;
        masked.enabled = true;
        masked.colorWriteMask = false;
        device.setBlend(masked);
        device.bindProgram(shader::ProgramKind::Fragment, _fsDepthOnly);
        for (std::size_t k = 0; k < opaque_count; ++k) {
            drawObject(device,
                       _objects[static_cast<std::size_t>(_visible[k])],
                       viewproj);
        }

        int lights = std::max(1, p.lightPasses);
        for (int light = 0; light < lights; ++light) {
            if (p.stencilShadows) {
                // Per-light stencil clear + z-fail volume pass.
                api::ClearCmd sclear;
                sclear.color = false;
                sclear.depth = false;
                sclear.stencil = true;
                device.clear(sclear);

                frag::DepthStencilState sv;
                sv.depthTest = true;
                sv.depthFunc = frag::CompareFunc::Less;
                sv.depthWrite = false;
                sv.stencilTest = true;
                sv.front.zfail = frag::StencilOp::DecrWrap;
                sv.back.zfail = frag::StencilOp::IncrWrap;
                device.setDepthStencil(sv);
                frag::BlendState vol_masked;
                vol_masked.enabled = true;
                vol_masked.colorWriteMask = false;
                device.setBlend(vol_masked);
                device.setCullMode(geom::CullMode::None);
                device.bindProgram(shader::ProgramKind::Fragment,
                                   _fsDepthOnly);
                drawVolumes(device, frame, light, viewproj, eye, fwd);
                device.setCullMode(geom::CullMode::Back);
            }

            // Additive lighting pass gated by depth-equal (+ stencil).
            frag::DepthStencilState lp;
            lp.depthTest = true;
            lp.depthFunc = frag::CompareFunc::Equal;
            lp.depthWrite = false;
            if (p.stencilShadows) {
                lp.stencilTest = true;
                lp.front.func = frag::CompareFunc::Equal;
                lp.front.ref = 0;
                lp.back = lp.front;
            }
            device.setDepthStencil(lp);
            frag::BlendState additive;
            additive.enabled = true;
            additive.srcFactor = frag::BlendFactor::One;
            additive.dstFactor = frag::BlendFactor::One;
            device.setBlend(additive);
            draw_opaque_pass();
        }
    } else {
        // Single base pass.
        device.setDepthStencil(depthLEqualWrite());
        frag::BlendState base;
        base.enabled = true;
        base.srcFactor = frag::BlendFactor::One;
        base.dstFactor = frag::BlendFactor::Zero;
        device.setBlend(base);
        draw_opaque_pass();
    }

    // Translucent batches: depth-read, no write, alpha blend.
    if (opaque_count < _visible.size()) {
        frag::DepthStencilState td;
        td.depthTest = true;
        td.depthFunc = frag::CompareFunc::LEqual;
        td.depthWrite = false;
        device.setDepthStencil(td);
        frag::BlendState tb;
        tb.enabled = true;
        tb.srcFactor = frag::BlendFactor::SrcAlpha;
        tb.dstFactor = frag::BlendFactor::InvSrcAlpha;
        device.setBlend(tb);
        last_material = -1;
        for (std::size_t k = opaque_count; k < _visible.size(); ++k) {
            const ObjectInstance &obj =
                _objects[static_cast<std::size_t>(_visible[k])];
            if (obj.material != last_material) {
                bindMaterial(
                    device,
                    _materials[static_cast<std::size_t>(obj.material)]);
                last_material = obj.material;
            }
            drawObject(device, obj, viewproj);
        }
    }

    // Scene transitions: periodic resource loads (the Fig. 3 spikes).
    if (p.sceneTransitionPeriod > 0 && frame > 0 &&
        frame % p.sceneTransitionPeriod == 0) {
        for (int t = 0; t < 6; ++t) {
            api::TextureSpec spec;
            spec.kind = api::TextureSpec::Kind::Noise;
            spec.size = p.textureSize;
            spec.seed = p.seed * 31337 +
                        static_cast<std::uint64_t>(_transitionSeq++);
            spec.format = p.texFormat;
            device.createTexture(spec);
        }
    }

    device.endFrame();
}

void
Timedemo::run(api::Device &device, int frames)
{
    if (!_isSetup) {
        WC3D_PROF_SCOPE("timedemo.setup");
        setup(device);
    }
    for (int f = 0; f < frames; ++f) {
        WC3D_PROF_SCOPE("frame", format("%d", f));
        renderFrame(device, f);
    }
}

} // namespace wc3d::workloads
