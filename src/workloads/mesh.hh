/**
 * @file
 * Procedural mesh construction for the synthetic timedemos. All meshes
 * are grid patches (walls, floors, terrain, props, shadow-volume slabs)
 * with strip-ordered triangle-list indices so the post-transform vertex
 * cache sees the locality real game meshes have ("the face ordering
 * resulting from algorithms explained in [15]", i.e. Hoppe's
 * transparent vertex caching).
 */

#ifndef WC3D_WORKLOADS_MESH_HH
#define WC3D_WORKLOADS_MESH_HH

#include "api/state.hh"
#include "common/rng.hh"

namespace wc3d::workloads {

/** A mesh: vertex + index data ready for device upload. */
struct Mesh
{
    api::VertexBufferData vertices;
    api::IndexBufferData indices;
    geom::PrimitiveType topology = geom::PrimitiveType::TriangleList;
};

/**
 * Build a planar grid patch of @p quads_x x @p quads_y quads spanning
 * [-0.5, 0.5]^2 in the XY plane (facing +Z), with uv over [0, uv_scale].
 * Triangle-list indices in strip order.
 */
Mesh makeGridPatch(int quads_x, int quads_y, float uv_scale = 1.0f);

/**
 * Same grid as a triangle strip (one strip per row stitched with
 * degenerate triangles), used by the Oblivion-style terrain profile.
 */
Mesh makeGridStrip(int quads_x, int quads_y, float uv_scale = 1.0f);

/**
 * Same grid as a set of triangle fans is impractical; fans model small
 * radial details: an n-segment disc fan facing +Z.
 */
Mesh makeDiscFan(int segments, float uv_scale = 1.0f);

/**
 * Heightfield terrain patch: a grid displaced by seeded value noise.
 * @param strip emit as triangle strip (terrain profiles) or list.
 */
Mesh makeTerrain(int quads, float height, std::uint64_t seed, bool strip);

/**
 * A closed box (12 triangles x tessellation) used for props and
 * occluders; normals point outward.
 */
Mesh makeBox(int tess, Vec3 half_extents);

/**
 * A shadow-volume slab: an extruded quad (the silhouette of an occluder
 * stretched away from a light) made of very large triangles, mirroring
 * the huge stencil-volume triangles that dominate Doom3/Quake4's
 * rasterization statistics.
 */
Mesh makeShadowVolumeSlab(Vec3 base_center, Vec3 extrude_dir, float width,
                          float length);

/**
 * Re-index @p mesh so its index count is exactly @p target_indices by
 * repeating trailing triangles (games re-reference geometry; this keeps
 * per-batch index targets exact without degenerate triangles).
 */
void padIndices(Mesh &mesh, int target_indices);

/** Number of triangles the mesh will assemble to. */
int meshTriangles(const Mesh &mesh);

} // namespace wc3d::workloads

#endif // WC3D_WORKLOADS_MESH_HH
