/**
 * @file
 * The synthetic timedemo engine. A GameProfile parameterizes scene
 * structure, shader mixes, primitive topology shares, filtering modes
 * and multipass rendering (z-prepass + stencil shadows) to stand in for
 * the paper's proprietary game traces; the Timedemo drives a Device
 * with a deterministic flythrough that reproduces the per-game API and
 * microarchitectural characteristics (see DESIGN.md substitution table).
 */

#ifndef WC3D_WORKLOADS_TIMEDEMO_HH
#define WC3D_WORKLOADS_TIMEDEMO_HH

#include <memory>
#include <string>
#include <vector>

#include "api/device.hh"
#include "workloads/camera.hh"
#include "workloads/mesh.hh"
#include "workloads/shadersynth.hh"

namespace wc3d::workloads {

/** Everything that makes one game/timedemo behave like itself. */
struct GameProfile
{
    /** @name Identity (paper Table I) */
    /// @{
    std::string id;          ///< e.g. "doom3/trdemo2"
    std::string game;        ///< e.g. "Doom3"
    std::string engine;      ///< e.g. "Doom3"
    std::string releaseDate; ///< e.g. "August 2004"
    api::GraphicsApi apiKind = api::GraphicsApi::OpenGL;
    int paperFrames = 2000;  ///< frames in the paper's trace
    bool usesShaders = true; ///< Table I "Shaders" column
    /// @}

    /** @name Texturing */
    /// @{
    tex::TexFilter filter = tex::TexFilter::Anisotropic;
    int maxAniso = 16;
    tex::TexFormat texFormat = tex::TexFormat::DXT1;
    int textureSize = 256;
    int materialCount = 12;
    float uvScale = 10.0f;    ///< texel density on world surfaces
    /** Sharpening LOD bias: our procedural textures repeat uniformly,
     *  so a negative bias stands in for the higher effective texel
     *  density of real game art (see DESIGN.md). */
    float samplerLodBias = -0.75f;
    /// @}

    /** @name Shader targets (Tables IV and XII) */
    /// @{
    int vsInstructions = 20;
    int vsInstructionsRegion2 = 0; ///< Oblivion's second region (0=off)
    double fsInstructions = 12.0;
    double fsTexInstructions = 3.0;
    double alphaTestShare = 0.0;   ///< share of materials with KIL
    /// @}

    /** @name Batch structure (Tables III and V, Fig. 1) */
    /// @{
    api::IndexType indexType = api::IndexType::U32;
    int indicesPerBatch = 300;
    int batchesPerFrame = 450;
    double batchJitter = 0.35;     ///< relative batch-count variability
    double stripPrimShare = 0.0;   ///< share of primitives from strips
    double fanPrimShare = 0.0;
    /// @}

    /** @name Scene structure (Tables VII-XI) */
    /// @{
    int objectCount = 1400;        ///< world objects in total
    float worldRadius = 90.0f;     ///< object field radius
    float viewScale = 1.0f;        ///< scales the derived draw distance
    float wallScale = 10.0f;       ///< world size of a wall object
    float wallFacingBias = 0.45f;  ///< 0=random facing, 1=always facing
    float coneCullDot = -0.2f;     ///< CPU view-cone cull threshold
    float corridorWidth = 0.0f;    ///< opaque-free band along the path
    double horizontalShare = 0.2;  ///< floors/terrain share (aniso)
    double translucentShare = 0.15;///< share of depth-write-off batches
    int meshVariants = 24;         ///< distinct meshes to rotate through
    /// @}

    /** @name Multipass rendering */
    /// @{
    bool zPrepass = false;
    bool stencilShadows = false;
    int lightPasses = 1;           ///< additive lighting passes
    int volumesPerLight = 14;
    /// @}

    /** @name API behaviour */
    /// @{
    int extraStateCallsPerBatch = 2; ///< beyond matrix + texture binds
    int sceneTransitionPeriod = 0;   ///< frames between loads (0=never)
    /// @}

    std::uint64_t seed = 1;
};

/** An instantiated, replayable synthetic timedemo. */
class Timedemo
{
  public:
    explicit Timedemo(GameProfile profile);

    const GameProfile &profile() const { return _profile; }

    /**
     * Create every resource on @p device (the paper's "set up geometry
     * and texture data" burst in early frames). Must be called once
     * before renderFrame().
     */
    void setup(api::Device &device);

    /** Render frame @p frame (deterministic for a given profile). */
    void renderFrame(api::Device &device, int frame);

    /** setup() + renderFrame() for frames [0, frames). */
    void run(api::Device &device, int frames);

  private:
    struct ObjectInstance
    {
        int mesh = 0;            ///< index into _meshIds
        int material = 0;        ///< index into _materials
        Vec3 position;
        float yaw = 0.0f;
        float scale = 1.0f;
        bool horizontal = false; ///< floor/terrain vs wall orientation
        bool backdrop = false;   ///< always-submitted far wall
    };

    struct MaterialIds
    {
        std::uint32_t program = 0;
        std::vector<std::uint32_t> textures;
        FragmentSpec spec;
        bool translucent = false;
    };

    Mat4 modelMatrix(const ObjectInstance &obj) const;
    void setMvp(api::Device &device, const Mat4 &mvp);
    void bindMaterial(api::Device &device, const MaterialIds &mat);
    void drawObject(api::Device &device, const ObjectInstance &obj,
                    const Mat4 &viewproj);
    void drawVolumes(api::Device &device, int frame, int light,
                     const Mat4 &viewproj, Vec3 eye, Vec3 forward);

    GameProfile _profile;
    CameraPath _camera;
    bool _isSetup = false;

    std::vector<std::pair<std::uint32_t, std::uint32_t>> _meshIds;
    std::vector<geom::PrimitiveType> _meshTopology;
    std::vector<std::uint32_t> _meshIndexCounts;
    std::vector<MaterialIds> _materials;
    std::vector<ObjectInstance> _objects;
    std::uint32_t _vsMain = 0;
    std::uint32_t _vsRegion2 = 0;
    std::uint32_t _fsDepthOnly = 0;
    std::pair<std::uint32_t, std::uint32_t> _volumeMesh{0, 0};
    std::uint32_t _volumeIndexCount = 0;
    float _viewRadius = 0.0f;    ///< derived from density and targets
    int _transitionSeq = 0;

    // Per-frame scratch.
    std::vector<int> _visible;
};

} // namespace wc3d::workloads

#endif // WC3D_WORKLOADS_TIMEDEMO_HH
