#include "workloads/games.hh"

#include <unordered_map>

#include "common/log.hh"

namespace wc3d::workloads {

namespace {

/** Per-game calibration targets from the paper's Tables I, III, IV, V
 *  and XII (batches/frame = indices-per-frame / indices-per-batch). */
std::vector<GameProfile>
buildProfiles()
{
    std::vector<GameProfile> v;

    {
        GameProfile p;
        p.id = "ut2004/primeval";
        p.game = "UT2004";
        p.engine = "Unreal 2.5";
        p.releaseDate = "March 2004";
        p.apiKind = api::GraphicsApi::OpenGL;
        p.paperFrames = 1992;
        p.usesShaders = false; // fixed function, translated by the driver
        p.indexType = api::IndexType::U16;
        p.indicesPerBatch = 1110;
        p.batchesPerFrame = 225;
        p.vsInstructions = 23;
        p.fsInstructions = 4.63;
        p.fsTexInstructions = 1.54;
        p.alphaTestShare = 0.20;
        p.fanPrimShare = 0.001;
        p.filter = tex::TexFilter::Anisotropic;
        p.maxAniso = 16;
        p.translucentShare = 0.55;
        p.batchJitter = 0.45;
        p.objectCount = 1500;
        p.worldRadius = 90.0f;
        p.wallScale = 7.5f;
        p.coneCullDot = 0.5f;
        p.wallFacingBias = 0.65f;
        p.horizontalShare = 0.3;
        p.textureSize = 512;
        p.materialCount = 16;
        p.meshVariants = 24;
        p.extraStateCallsPerBatch = 2;
        p.seed = 101;
        v.push_back(p);
    }

    auto doom3_like = [](const char *id, const char *game,
                         const char *engine, const char *date, int frames,
                         int idx_batch, int batches, int vs, double fs,
                         double fstex, std::uint64_t seed) {
        GameProfile p;
        p.id = id;
        p.game = game;
        p.engine = engine;
        p.releaseDate = date;
        p.apiKind = api::GraphicsApi::OpenGL;
        p.paperFrames = frames;
        p.indexType = api::IndexType::U32;
        p.indicesPerBatch = idx_batch;
        p.batchesPerFrame = batches;
        p.vsInstructions = vs;
        p.fsInstructions = fs;
        p.fsTexInstructions = fstex;
        p.alphaTestShare = 0.02;
        p.filter = tex::TexFilter::Anisotropic;
        p.maxAniso = 16;
        p.zPrepass = true;
        p.stencilShadows = true;
        p.lightPasses = 4;
        p.volumesPerLight = 6;
        p.samplerLodBias = -0.25f;
        p.corridorWidth = 4.0f;
        p.translucentShare = 0.05;
        p.batchJitter = 0.40;
        p.objectCount = 1700;
        p.worldRadius = 80.0f;
        p.wallScale = 6.5f;
        p.coneCullDot = 0.45f;
        p.wallFacingBias = 0.15f;
        p.horizontalShare = 0.3;
        p.textureSize = 512;
        p.materialCount = 16;
        p.meshVariants = 24;
        p.extraStateCallsPerBatch = 3;
        p.seed = seed;
        return p;
    };

    v.push_back(doom3_like("doom3/trdemo1", "Doom3", "Doom3",
                           "August 2004", 3464, 275, 714, 20, 12.85,
                           3.98, 202));
    v.push_back(doom3_like("doom3/trdemo2", "Doom3", "Doom3",
                           "August 2004", 3990, 304, 449, 19, 12.95,
                           3.98, 203));
    {
        GameProfile p = doom3_like("quake4/demo4", "Quake4", "Doom3",
                                   "October 2005", 2976, 405, 426, 28,
                                   16.29, 4.33, 204);
        p.coneCullDot = 0.3f; // Quake4/demo4: 51% clipped (Table VII)
        v.push_back(p);
    }
    v.push_back(doom3_like("quake4/guru5", "Quake4", "Doom3",
                           "October 2005", 3081, 166, 814, 24, 17.16,
                           4.54, 205));

    auto riddick_like = [](const char *id, int frames, int idx_batch,
                           int batches, int vs, double fs, double fstex,
                           std::uint64_t seed) {
        GameProfile p;
        p.id = id;
        p.game = "Riddick";
        p.engine = "Starbreeze";
        p.releaseDate = "December 2004";
        p.apiKind = api::GraphicsApi::OpenGL;
        p.paperFrames = frames;
        p.indexType = api::IndexType::U16;
        p.indicesPerBatch = idx_batch;
        p.batchesPerFrame = batches;
        p.vsInstructions = vs;
        p.fsInstructions = fs;
        p.fsTexInstructions = fstex;
        p.alphaTestShare = 0.05;
        p.filter = tex::TexFilter::Trilinear; // "High/Trilinear"
        p.maxAniso = 1;
        p.zPrepass = true;
        p.lightPasses = 2;
        p.corridorWidth = 3.0f;
        p.translucentShare = 0.12;
        p.batchJitter = 0.35;
        p.objectCount = 1600;
        p.worldRadius = 85.0f;
        p.wallScale = 8.0f;
        p.coneCullDot = 0.5f;
        p.textureSize = 512;
        p.materialCount = 16;
        p.extraStateCallsPerBatch = 3;
        p.seed = seed;
        return p;
    };
    v.push_back(riddick_like("riddick/mainframe", 1629, 356, 604, 17,
                             14.64, 1.94, 301));
    v.push_back(riddick_like("riddick/prisonarea", 2310, 658, 364, 21,
                             13.63, 1.83, 302));

    auto fear_like = [](const char *id, int frames, int idx_batch,
                        int batches, int vs, double fs, double fstex,
                        double fan_share, std::uint64_t seed) {
        GameProfile p;
        p.id = id;
        p.game = "FEAR";
        p.engine = "Monolith";
        p.releaseDate = "October 2005";
        p.apiKind = api::GraphicsApi::Direct3D;
        p.paperFrames = frames;
        p.indexType = api::IndexType::U16;
        p.indicesPerBatch = idx_batch;
        p.batchesPerFrame = batches;
        p.vsInstructions = vs;
        p.fsInstructions = fs;
        p.fsTexInstructions = fstex;
        p.fanPrimShare = fan_share;
        p.alphaTestShare = 0.06;
        p.filter = tex::TexFilter::Anisotropic;
        p.maxAniso = 16;
        p.zPrepass = true;
        p.stencilShadows = true;
        p.lightPasses = 2;
        p.volumesPerLight = 10;
        p.corridorWidth = 4.0f;
        p.translucentShare = 0.15;
        p.batchJitter = 0.5;
        p.objectCount = 1700;
        p.worldRadius = 85.0f;
        p.wallScale = 8.0f;
        p.coneCullDot = 0.5f;
        p.textureSize = 512;
        p.materialCount = 16;
        p.extraStateCallsPerBatch = 4;
        p.sceneTransitionPeriod = 320;
        p.seed = seed;
        return p;
    };
    v.push_back(fear_like("fear/builtin", 576, 641, 517, 18, 21.30, 2.79,
                          0.0, 401));
    v.push_back(fear_like("fear/interval2", 2102, 1085, 283, 21, 19.31,
                          2.72, 0.033, 402));

    {
        GameProfile p;
        p.id = "hl2lc/builtin";
        p.game = "Half Life 2 LC";
        p.engine = "Valve Source";
        p.releaseDate = "October 2005";
        p.apiKind = api::GraphicsApi::Direct3D;
        p.paperFrames = 1805;
        p.indexType = api::IndexType::U16;
        p.indicesPerBatch = 736;
        p.batchesPerFrame = 447;
        p.vsInstructions = 27;
        p.fsInstructions = 19.94;
        p.fsTexInstructions = 3.88;
        p.alphaTestShare = 0.08;
        p.filter = tex::TexFilter::Anisotropic;
        p.maxAniso = 16;
        p.translucentShare = 0.25;
        p.batchJitter = 0.4;
        p.objectCount = 1600;
        p.worldRadius = 95.0f;
        p.wallScale = 9.0f;
        p.coneCullDot = 0.5f;
        p.textureSize = 512;
        p.materialCount = 16;
        p.extraStateCallsPerBatch = 3;
        p.seed = 501;
        v.push_back(p);
    }

    {
        GameProfile p;
        p.id = "oblivion/anvilcastle";
        p.game = "Oblivion";
        p.engine = "Gamebryo";
        p.releaseDate = "March 2006";
        p.apiKind = api::GraphicsApi::Direct3D;
        p.paperFrames = 2620;
        p.indexType = api::IndexType::U16;
        p.indicesPerBatch = 998;
        p.batchesPerFrame = 713;
        p.vsInstructions = 19;          // region 1
        p.vsInstructionsRegion2 = 38;   // region 2 (Table IV)
        p.fsInstructions = 15.48;
        p.fsTexInstructions = 1.36;
        p.alphaTestShare = 0.10;
        p.stripPrimShare = 0.537;       // open terrain as strips
        p.filter = tex::TexFilter::Trilinear;
        p.maxAniso = 1;
        p.translucentShare = 0.15;
        p.batchJitter = 0.5;
        p.objectCount = 2000;
        p.worldRadius = 120.0f;         // open countryside
        p.wallScale = 18.0f;
        p.wallFacingBias = 0.25f;
        p.meshVariants = 30;
        p.extraStateCallsPerBatch = 3;
        p.sceneTransitionPeriod = 400;
        p.seed = 601;
        v.push_back(p);
    }

    {
        GameProfile p;
        p.id = "splintercell3/firstlevel";
        p.game = "Splinter Cell 3";
        p.engine = "Unreal 2.5++";
        p.releaseDate = "March 2005";
        p.apiKind = api::GraphicsApi::Direct3D;
        p.paperFrames = 2970;
        p.indexType = api::IndexType::U16;
        p.indicesPerBatch = 308;
        p.batchesPerFrame = 576;
        p.vsInstructions = 28;
        p.fsInstructions = 4.62;
        p.fsTexInstructions = 2.13;
        p.alphaTestShare = 0.05;
        p.stripPrimShare = 0.267;
        p.fanPrimShare = 0.042;
        p.filter = tex::TexFilter::Anisotropic;
        p.maxAniso = 16;
        p.translucentShare = 0.12;
        p.batchJitter = 0.35;
        p.objectCount = 1600;
        p.worldRadius = 85.0f;
        p.wallScale = 10.0f;
        p.extraStateCallsPerBatch = 2;
        p.seed = 701;
        v.push_back(p);
    }

    return v;
}

const std::vector<GameProfile> &
profiles()
{
    static const std::vector<GameProfile> kProfiles = buildProfiles();
    return kProfiles;
}

} // namespace

const std::vector<std::string> &
allTimedemoIds()
{
    static const std::vector<std::string> kIds = [] {
        std::vector<std::string> ids;
        for (const auto &p : profiles())
            ids.push_back(p.id);
        return ids;
    }();
    return kIds;
}

const std::vector<std::string> &
simulatedTimedemoIds()
{
    static const std::vector<std::string> kIds = {
        "ut2004/primeval",
        "doom3/trdemo2",
        "quake4/demo4",
    };
    return kIds;
}

bool
isTimedemoId(const std::string &id)
{
    for (const auto &p : profiles()) {
        if (p.id == id)
            return true;
    }
    return false;
}

const GameProfile &
gameProfile(const std::string &id)
{
    for (const auto &p : profiles()) {
        if (p.id == id)
            return p;
    }
    fatal("unknown timedemo id '%s'", id.c_str());
}

std::unique_ptr<Timedemo>
makeTimedemo(const std::string &id)
{
    return std::make_unique<Timedemo>(gameProfile(id));
}

} // namespace wc3d::workloads
