#include "workloads/mesh.hh"

#include <cmath>

#include "common/log.hh"
#include "geom/assembly.hh"

namespace wc3d::workloads {

namespace {

/** Add the vertices of a (quads_x+1) x (quads_y+1) grid. */
void
addGridVertices(Mesh &mesh, int quads_x, int quads_y, float uv_scale)
{
    for (int y = 0; y <= quads_y; ++y) {
        for (int x = 0; x <= quads_x; ++x) {
            api::VertexData v;
            float fx = static_cast<float>(x) / quads_x;
            float fy = static_cast<float>(y) / quads_y;
            v.position = {fx - 0.5f, fy - 0.5f, 0.0f};
            v.normal = {0.0f, 0.0f, 1.0f};
            v.uv = {fx * uv_scale, fy * uv_scale};
            mesh.vertices.vertices.push_back(v);
        }
    }
}

std::uint32_t
gridIndex(int quads_x, int x, int y)
{
    return static_cast<std::uint32_t>(y * (quads_x + 1) + x);
}

} // namespace

Mesh
makeGridPatch(int quads_x, int quads_y, float uv_scale)
{
    WC3D_ASSERT(quads_x > 0 && quads_y > 0);
    Mesh mesh;
    addGridVertices(mesh, quads_x, quads_y, uv_scale);
    auto &idx = mesh.indices.indices;
    // Strip order within each row: adjacent triangles share two
    // vertices, giving post-transform-cache behaviour close to strips.
    for (int y = 0; y < quads_y; ++y) {
        for (int x = 0; x < quads_x; ++x) {
            std::uint32_t i00 = gridIndex(quads_x, x, y);
            std::uint32_t i10 = gridIndex(quads_x, x + 1, y);
            std::uint32_t i01 = gridIndex(quads_x, x, y + 1);
            std::uint32_t i11 = gridIndex(quads_x, x + 1, y + 1);
            idx.insert(idx.end(), {i00, i10, i01, i10, i11, i01});
        }
    }
    return mesh;
}

Mesh
makeGridStrip(int quads_x, int quads_y, float uv_scale)
{
    WC3D_ASSERT(quads_x > 0 && quads_y > 0);
    Mesh mesh;
    mesh.topology = geom::PrimitiveType::TriangleStrip;
    addGridVertices(mesh, quads_x, quads_y, uv_scale);
    auto &idx = mesh.indices.indices;
    for (int y = 0; y < quads_y; ++y) {
        if (y > 0) {
            // Degenerate stitch between rows.
            idx.push_back(gridIndex(quads_x, quads_x, y));
            idx.push_back(gridIndex(quads_x, 0, y));
        }
        for (int x = 0; x <= quads_x; ++x) {
            idx.push_back(gridIndex(quads_x, x, y));
            idx.push_back(gridIndex(quads_x, x, y + 1));
        }
    }
    return mesh;
}

Mesh
makeDiscFan(int segments, float uv_scale)
{
    WC3D_ASSERT(segments >= 3);
    Mesh mesh;
    mesh.topology = geom::PrimitiveType::TriangleFan;
    api::VertexData center;
    center.position = {0.0f, 0.0f, 0.0f};
    center.normal = {0.0f, 0.0f, 1.0f};
    center.uv = {0.5f * uv_scale, 0.5f * uv_scale};
    mesh.vertices.vertices.push_back(center);
    for (int s = 0; s <= segments; ++s) {
        float a = 2.0f * kPi * static_cast<float>(s) / segments;
        api::VertexData v;
        v.position = {0.5f * std::cos(a), 0.5f * std::sin(a), 0.0f};
        v.normal = {0.0f, 0.0f, 1.0f};
        v.uv = {(0.5f + 0.5f * std::cos(a)) * uv_scale,
                (0.5f + 0.5f * std::sin(a)) * uv_scale};
        mesh.vertices.vertices.push_back(v);
    }
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(segments) + 2; ++i) {
        mesh.indices.indices.push_back(i);
    }
    return mesh;
}

Mesh
makeTerrain(int quads, float height, std::uint64_t seed, bool strip)
{
    Mesh mesh = strip ? makeGridStrip(quads, quads, 8.0f)
                      : makeGridPatch(quads, quads, 8.0f);
    Rng rng(seed);
    // Low-frequency lattice noise displacing z.
    int lattice = 8;
    std::vector<float> values(
        static_cast<std::size_t>(lattice + 1) * (lattice + 1));
    for (auto &v : values)
        v = rng.nextFloat();
    auto lattice_at = [&](int x, int y) {
        x = std::clamp(x, 0, lattice);
        y = std::clamp(y, 0, lattice);
        return values[static_cast<std::size_t>(y) * (lattice + 1) + x];
    };
    for (auto &v : mesh.vertices.vertices) {
        float fx = (v.position.x + 0.5f) * lattice;
        float fy = (v.position.y + 0.5f) * lattice;
        int ix = static_cast<int>(fx);
        int iy = static_cast<int>(fy);
        float tx = fx - ix, ty = fy - iy;
        float h = std::lerp(
            std::lerp(lattice_at(ix, iy), lattice_at(ix + 1, iy), tx),
            std::lerp(lattice_at(ix, iy + 1), lattice_at(ix + 1, iy + 1),
                      tx),
            ty);
        v.position.z = h * height;
    }
    return mesh;
}

Mesh
makeBox(int tess, Vec3 half)
{
    WC3D_ASSERT(tess > 0);
    Mesh mesh;
    auto &idx = mesh.indices.indices;
    // Six faces, each a tess x tess grid.
    struct Face
    {
        Vec3 origin, du, dv, normal;
    };
    const Face faces[6] = {
        {{-half.x, -half.y, half.z}, {2 * half.x, 0, 0}, {0, 2 * half.y, 0},
         {0, 0, 1}},
        {{half.x, -half.y, -half.z}, {-2 * half.x, 0, 0},
         {0, 2 * half.y, 0}, {0, 0, -1}},
        {{half.x, -half.y, half.z}, {0, 0, -2 * half.z}, {0, 2 * half.y, 0},
         {1, 0, 0}},
        {{-half.x, -half.y, -half.z}, {0, 0, 2 * half.z},
         {0, 2 * half.y, 0}, {-1, 0, 0}},
        {{-half.x, half.y, half.z}, {2 * half.x, 0, 0}, {0, 0, -2 * half.z},
         {0, 1, 0}},
        {{-half.x, -half.y, -half.z}, {2 * half.x, 0, 0},
         {0, 0, 2 * half.z}, {0, -1, 0}},
    };
    for (const Face &f : faces) {
        std::uint32_t base =
            static_cast<std::uint32_t>(mesh.vertices.vertices.size());
        for (int y = 0; y <= tess; ++y) {
            for (int x = 0; x <= tess; ++x) {
                float fx = static_cast<float>(x) / tess;
                float fy = static_cast<float>(y) / tess;
                api::VertexData v;
                v.position = f.origin + f.du * fx + f.dv * fy;
                v.normal = f.normal;
                v.uv = {fx, fy};
                mesh.vertices.vertices.push_back(v);
            }
        }
        for (int y = 0; y < tess; ++y) {
            for (int x = 0; x < tess; ++x) {
                std::uint32_t i00 =
                    base + static_cast<std::uint32_t>(y * (tess + 1) + x);
                std::uint32_t i10 = i00 + 1;
                std::uint32_t i01 =
                    i00 + static_cast<std::uint32_t>(tess + 1);
                std::uint32_t i11 = i01 + 1;
                idx.insert(idx.end(), {i00, i10, i01, i10, i11, i01});
            }
        }
    }
    return mesh;
}

Mesh
makeShadowVolumeSlab(Vec3 base_center, Vec3 extrude_dir, float width,
                     float length)
{
    Mesh mesh;
    Vec3 dir = extrude_dir.normalized();
    // Perpendicular frame.
    Vec3 up = std::fabs(dir.y) < 0.9f ? Vec3{0, 1, 0} : Vec3{1, 0, 0};
    Vec3 side = dir.cross(up).normalized() * (width * 0.5f);
    Vec3 top = side.cross(dir).normalized() * (width * 0.5f);
    Vec3 far_center = base_center + dir * length;

    auto add = [&](Vec3 p, float u, float v) {
        api::VertexData vert;
        vert.position = p;
        vert.normal = dir;
        vert.uv = {u, v};
        mesh.vertices.vertices.push_back(vert);
        return static_cast<std::uint32_t>(mesh.vertices.vertices.size() -
                                          1);
    };

    // Near cap corners (0-3) and far cap corners (4-7).
    std::uint32_t n0 = add(base_center - side - top, 0, 0);
    std::uint32_t n1 = add(base_center + side - top, 1, 0);
    std::uint32_t n2 = add(base_center + side + top, 1, 1);
    std::uint32_t n3 = add(base_center - side + top, 0, 1);
    std::uint32_t f0 = add(far_center - side - top, 0, 0);
    std::uint32_t f1 = add(far_center + side - top, 1, 0);
    std::uint32_t f2 = add(far_center + side + top, 1, 1);
    std::uint32_t f3 = add(far_center - side + top, 0, 1);

    auto quad = [&](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    std::uint32_t d) {
        mesh.indices.indices.insert(mesh.indices.indices.end(),
                                    {a, b, c, a, c, d});
    };
    quad(n0, n1, n2, n3); // near cap
    quad(f1, f0, f3, f2); // far cap (reversed)
    quad(n1, f1, f2, n2); // sides
    quad(f0, n0, n3, f3);
    quad(n3, n2, f2, f3);
    quad(n0, f0, f1, n1);
    return mesh;
}

void
padIndices(Mesh &mesh, int target_indices)
{
    auto &idx = mesh.indices.indices;
    if (static_cast<int>(idx.size()) >= target_indices) {
        idx.resize(static_cast<std::size_t>(target_indices));
        if (mesh.topology == geom::PrimitiveType::TriangleList)
            idx.resize(idx.size() - idx.size() % 3);
        return;
    }
    if (mesh.topology != geom::PrimitiveType::TriangleList)
        return; // only lists are padded (re-referencing triangles)
    std::size_t original = idx.size();
    WC3D_ASSERT(original >= 3);
    std::size_t cursor = 0;
    while (static_cast<int>(idx.size()) + 3 <= target_indices) {
        idx.push_back(idx[cursor]);
        idx.push_back(idx[cursor + 1]);
        idx.push_back(idx[cursor + 2]);
        cursor = (cursor + 3) % original;
    }
}

int
meshTriangles(const Mesh &mesh)
{
    return geom::trianglesForIndices(
        mesh.topology, static_cast<int>(mesh.indices.indices.size()));
}

} // namespace wc3d::workloads
