/**
 * @file
 * Stencil shadow-volume planning for the Doom3/Quake4-style profiles.
 * Produces the per-light slab placements whose enormous z-fail-tested
 * triangles are responsible for those games' outsized rasterization and
 * z/stencil overdraw in the paper (Tables VIII, IX, XI, XVI).
 */

#ifndef WC3D_WORKLOADS_SHADOWVOLUME_HH
#define WC3D_WORKLOADS_SHADOWVOLUME_HH

#include <vector>

#include "common/rng.hh"
#include "common/vecmath.hh"

namespace wc3d::workloads {

/** One volume instance: where to place a shadow slab this frame. */
struct VolumePlacement
{
    Vec3 base;     ///< silhouette center (near the lit occluder)
    Vec3 extrude;  ///< direction away from the light
    float width;   ///< silhouette size
    float length;  ///< extrusion distance
};

/**
 * Plan @p count volumes for the light of index @p light around the
 * camera at @p eye looking towards @p forward. Volumes straddle the
 * view so they rasterize to large screen areas, like real shadow
 * volumes through the camera frustum.
 */
std::vector<VolumePlacement>
planShadowVolumes(int count, int light, Vec3 eye, Vec3 forward,
                  Rng &rng);

} // namespace wc3d::workloads

#endif // WC3D_WORKLOADS_SHADOWVOLUME_HH
