/**
 * @file
 * Shader synthesis: builds vertex and fragment programs (as assembly
 * text for the device) with exact target instruction counts and
 * ALU:TEX mixes, so the synthetic workloads reproduce the paper's
 * per-game shader statistics (Tables IV and XII).
 */

#ifndef WC3D_WORKLOADS_SHADERSYNTH_HH
#define WC3D_WORKLOADS_SHADERSYNTH_HH

#include <string>
#include <vector>

#include "common/rng.hh"

namespace wc3d::workloads {

/**
 * Build a vertex program of exactly @p total_instructions.
 *
 * Register contract: inputs v0=position, v1=normal, v2=uv, v3=color;
 * constants c0..c3 = model-view-projection rows, c4 = light direction,
 * c5 = ambient, c6/c7 = filler parameters; outputs o0 = clip position,
 * o1 = uv (varying 0), o2 = lit color (varying 1).
 *
 * @pre total_instructions >= 9 (transform + uv + minimal lighting).
 */
std::string synthVertexProgram(int total_instructions);

/** Parameters of a synthesized fragment program. */
struct FragmentSpec
{
    int totalInstructions = 8; ///< including TEX and KIL
    int texInstructions = 2;   ///< TEX count (samplers 0..n-1)
    bool alphaKill = false;    ///< append a texture-alpha KIL pair
    float uvScale = 1.0f;      ///< secondary-coordinate scale factor
};

/**
 * Build a fragment program matching @p spec.
 *
 * Register contract: inputs v0 = uv, v1 = color; output o0 = color.
 * The program samples tex[0..texInstructions-1] and combines the
 * results with ALU filler so the static counts are exact.
 *
 * @pre totalInstructions >= texInstructions + 1 (+2 when alphaKill),
 *      and >= 1.
 */
std::string synthFragmentProgram(const FragmentSpec &spec);

/**
 * Distribute a fractional target over @p count materials: returns
 * per-material (total, tex) specs whose equal-weight average matches
 * (fs_target, tex_target) to within rounding of the material count.
 */
std::vector<FragmentSpec> planMaterialMix(int count, double fs_target,
                                          double tex_target,
                                          double alpha_share, Rng &rng);

} // namespace wc3d::workloads

#endif // WC3D_WORKLOADS_SHADERSYNTH_HH
