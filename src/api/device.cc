#include "api/device.hh"

#include "api/trace.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "shader/assemble.hh"

namespace wc3d::api {

Device::Device(GraphicsApi apiKind) : _apiKind(apiKind)
{
}

Device::~Device() = default;

void
Device::submit(const Command &cmd)
{
    if (_recorder)
        _recorder->write(cmd);
    if (isStateCall(cmd))
        _stats.noteStateCall();
    apply(cmd);
}

shader::Program *
Device::mutableProgram(std::uint32_t id)
{
    auto it = _programs.find(id);
    return it != _programs.end() ? it->second.get() : nullptr;
}

void
Device::apply(const Command &cmd)
{
    if (const auto *c = std::get_if<CreateVertexBufferCmd>(&cmd)) {
        auto [it, fresh] = _vertexBuffers.emplace(c->id, c->data);
        if (!fresh) {
            warn("device: vertex buffer %u redefined", c->id);
            it->second = c->data;
        }
        if (_sink)
            _sink->vertexBufferCreated(c->id, it->second);
    } else if (const auto *c = std::get_if<CreateIndexBufferCmd>(&cmd)) {
        auto [it, fresh] = _indexBuffers.emplace(c->id, c->data);
        if (!fresh) {
            warn("device: index buffer %u redefined", c->id);
            it->second = c->data;
        }
        if (_sink)
            _sink->indexBufferCreated(c->id, it->second);
    } else if (const auto *c = std::get_if<CreateTextureCmd>(&cmd)) {
        auto texture = std::make_unique<tex::Texture2D>(
            c->spec.build(format("tex%u", c->id)));
        tex::Texture2D *ptr = texture.get();
        _textures[c->id] = std::move(texture);
        if (_sink)
            _sink->textureCreated(c->id, *ptr);
    } else if (const auto *c = std::get_if<CreateProgramCmd>(&cmd)) {
        auto result = shader::assemble(c->source, c->kind,
                                       format("prog%u", c->id));
        if (!result.ok) {
            warn("device: program %u failed to assemble: %s", c->id,
                 result.error.c_str());
            return;
        }
        auto program =
            std::make_unique<shader::Program>(std::move(result.program));
        shader::Program *ptr = program.get();
        _programs[c->id] = std::move(program);
        if (_sink)
            _sink->programCreated(c->id, *ptr);
    } else if (const auto *c = std::get_if<BindProgramCmd>(&cmd)) {
        if (c->id != 0 && !_programs.count(c->id)) {
            warn("device: binding unknown program %u", c->id);
            return;
        }
        if (c->kind == shader::ProgramKind::Vertex) {
            _current.vertexProgram = c->id;
        } else {
            _current.fragmentProgram = c->id;
        }
    } else if (const auto *c = std::get_if<BindTextureCmd>(&cmd)) {
        if (c->unit >= shader::kMaxSamplers) {
            warn("device: texture unit %u out of range", c->unit);
            return;
        }
        if (c->id != 0 && !_textures.count(c->id)) {
            warn("device: binding unknown texture %u", c->id);
            return;
        }
        _current.textures[c->unit] = c->id;
        _current.samplers[c->unit] = c->sampler;
    } else if (const auto *c = std::get_if<SetDepthStencilCmd>(&cmd)) {
        _current.depthStencil = c->state;
    } else if (const auto *c = std::get_if<SetBlendCmd>(&cmd)) {
        _current.blend = c->state;
    } else if (const auto *c = std::get_if<SetCullModeCmd>(&cmd)) {
        _current.cullMode = c->mode;
    } else if (const auto *c = std::get_if<SetConstantCmd>(&cmd)) {
        std::uint32_t id = c->kind == shader::ProgramKind::Vertex
                               ? _current.vertexProgram
                               : _current.fragmentProgram;
        if (shader::Program *p = mutableProgram(id)) {
            p->setConstant(static_cast<int>(c->index), c->value);
        } else {
            warn("device: constant set with no program bound");
        }
    } else if (const auto *c = std::get_if<ClearCmd>(&cmd)) {
        if (_sink)
            _sink->clear(*c);
    } else if (const auto *c = std::get_if<DrawCmd>(&cmd)) {
        const VertexBufferData *vb = vertexBuffer(c->vertexBuffer);
        const IndexBufferData *ib = indexBuffer(c->indexBuffer);
        if (!vb || !ib) {
            warn("device: draw references unknown buffers (%u, %u)",
                 c->vertexBuffer, c->indexBuffer);
            return;
        }
        if (c->firstIndex + c->indexCount > ib->indices.size()) {
            warn("device: draw range exceeds index buffer");
            return;
        }
        const shader::Program *vp = program(_current.vertexProgram);
        const shader::Program *fp = program(_current.fragmentProgram);
        if (!vp || !fp) {
            warn("device: draw with unbound programs dropped");
            return;
        }

        _stats.noteDraw(c->topology, static_cast<int>(c->indexCount),
                        indexTypeBytes(ib->type), vp->instructionCount(),
                        fp->instructionCount(),
                        fp->textureInstructionCount());

        if (_sink) {
            DrawCall call;
            call.vertices = vb;
            call.indexData = ib;
            call.firstIndex = c->firstIndex;
            call.indexCount = c->indexCount;
            call.topology = c->topology;
            call.vertexProgram = vp;
            call.fragmentProgram = fp;
            call.state = _current;
            for (int u = 0; u < shader::kMaxSamplers; ++u)
                call.textures[u] = texture(_current.textures[u]);
            _sink->draw(call);
        }
    } else if (std::get_if<EndFrameCmd>(&cmd)) {
        _stats.noteEndFrame();
        if (_sink)
            _sink->endFrame();
    } else {
        panic("device: unhandled command");
    }
}

std::uint32_t
Device::createVertexBuffer(VertexBufferData data)
{
    std::uint32_t id = _nextId++;
    submit(CreateVertexBufferCmd{id, std::move(data)});
    return id;
}

std::uint32_t
Device::createIndexBuffer(IndexBufferData data)
{
    std::uint32_t id = _nextId++;
    submit(CreateIndexBufferCmd{id, std::move(data)});
    return id;
}

std::uint32_t
Device::createTexture(const TextureSpec &spec)
{
    std::uint32_t id = _nextId++;
    submit(CreateTextureCmd{id, spec});
    return id;
}

std::uint32_t
Device::createProgram(shader::ProgramKind kind, const std::string &source)
{
    std::uint32_t id = _nextId++;
    submit(CreateProgramCmd{id, kind, source});
    return _programs.count(id) ? id : 0;
}

void
Device::bindProgram(shader::ProgramKind kind, std::uint32_t id)
{
    submit(BindProgramCmd{kind, id});
}

void
Device::bindTexture(std::uint32_t unit, std::uint32_t id,
                    const tex::SamplerState &sampler)
{
    submit(BindTextureCmd{unit, id, sampler});
}

void
Device::setDepthStencil(const frag::DepthStencilState &state)
{
    submit(SetDepthStencilCmd{state});
}

void
Device::setBlend(const frag::BlendState &state)
{
    submit(SetBlendCmd{state});
}

void
Device::setCullMode(geom::CullMode mode)
{
    submit(SetCullModeCmd{mode});
}

void
Device::setConstant(shader::ProgramKind kind, std::uint32_t index,
                    Vec4 value)
{
    submit(SetConstantCmd{kind, index, value});
}

void
Device::clear(const ClearCmd &cmd)
{
    submit(cmd);
}

void
Device::draw(std::uint32_t vertex_buffer, std::uint32_t index_buffer,
             std::uint32_t first_index, std::uint32_t index_count,
             geom::PrimitiveType topology)
{
    submit(DrawCmd{vertex_buffer, index_buffer, first_index, index_count,
                   topology});
}

void
Device::endFrame()
{
    submit(EndFrameCmd{});
}

const VertexBufferData *
Device::vertexBuffer(std::uint32_t id) const
{
    auto it = _vertexBuffers.find(id);
    return it != _vertexBuffers.end() ? &it->second : nullptr;
}

const IndexBufferData *
Device::indexBuffer(std::uint32_t id) const
{
    auto it = _indexBuffers.find(id);
    return it != _indexBuffers.end() ? &it->second : nullptr;
}

const tex::Texture2D *
Device::texture(std::uint32_t id) const
{
    auto it = _textures.find(id);
    return it != _textures.end() ? it->second.get() : nullptr;
}

const shader::Program *
Device::program(std::uint32_t id) const
{
    auto it = _programs.find(id);
    return it != _programs.end() ? it->second.get() : nullptr;
}

} // namespace wc3d::api
