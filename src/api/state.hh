/**
 * @file
 * Graphics-API-level render state and resource descriptions. The API is
 * OpenGL/Direct3D-neutral: both of the paper's API families drive the
 * same in-process command set, mirroring how the paper collects one set
 * of statistics from GLInterceptor (OGL) and a PIX-trace player (D3D).
 */

#ifndef WC3D_API_STATE_HH
#define WC3D_API_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fragment/blend.hh"
#include "fragment/zstencil.hh"
#include "geom/clipcull.hh"
#include "shader/program.hh"
#include "texture/sampler.hh"

namespace wc3d::api {

/** Which marketplace API a workload represents (reporting only). */
enum class GraphicsApi : std::uint8_t
{
    OpenGL,
    Direct3D,
};

const char *graphicsApiName(GraphicsApi a);

/** Index element width; 2 bytes (D3D-style) or 4 bytes (Doom3 engines). */
enum class IndexType : std::uint8_t
{
    U16,
    U32,
};

/** Bytes per index element. */
int indexTypeBytes(IndexType t);

/**
 * Fixed vertex attribute layout: position(3), normal(3), uv(2),
 * color(4) = 12 floats. Buffers may declare a larger stride
 * (tangents etc.) which only affects fetch bandwidth.
 */
constexpr int kVertexLayoutFloats = 12;

/** One vertex in the canonical layout. */
struct VertexData
{
    Vec3 position;
    Vec3 normal;
    Vec2 uv;
    Vec4 color{1.0f, 1.0f, 1.0f, 1.0f};
};

/** Vertex buffer resource: canonical data + declared stride. */
struct VertexBufferData
{
    std::vector<VertexData> vertices;
    int strideFloats = kVertexLayoutFloats; ///< >= kVertexLayoutFloats

    int strideBytes() const { return strideFloats * 4; }
    std::uint64_t
    totalBytes() const
    {
        return vertices.size() * static_cast<std::uint64_t>(strideBytes());
    }
};

/** Index buffer resource. */
struct IndexBufferData
{
    IndexType type = IndexType::U16;
    std::vector<std::uint32_t> indices;

    std::uint64_t
    totalBytes() const
    {
        return indices.size() *
               static_cast<std::uint64_t>(indexTypeBytes(type));
    }
};

/** Procedural texture descriptor (textures are generated, not loaded). */
struct TextureSpec
{
    enum class Kind : std::uint8_t { Checker, Noise, Gradient };

    Kind kind = Kind::Noise;
    int size = 256;
    int cell = 16;                  ///< checker cell size
    std::uint64_t seed = 1;         ///< noise seed
    bool alphaNoise = false;        ///< noise alpha (alpha test)
    Rgba8 colorA{200, 200, 200, 255};
    Rgba8 colorB{40, 40, 40, 255};
    tex::TexFormat format = tex::TexFormat::DXT1;

    /** Instantiate the texture this spec describes. */
    tex::Texture2D build(const std::string &name) const;
};

/** The full bound state a draw call snapshots. */
struct RenderState
{
    frag::DepthStencilState depthStencil;
    frag::BlendState blend;
    geom::CullMode cullMode = geom::CullMode::Back;
    std::uint32_t vertexProgram = 0;   ///< 0 = none bound
    std::uint32_t fragmentProgram = 0; ///< 0 = none bound
    std::uint32_t textures[shader::kMaxSamplers] = {};
    tex::SamplerState samplers[shader::kMaxSamplers];
};

} // namespace wc3d::api

#endif // WC3D_API_STATE_HH
