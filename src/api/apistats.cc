#include "api/apistats.hh"

namespace wc3d::api {

void
ApiStats::noteStateCall()
{
    ++_stateCalls;
    _series.record("state_calls", 1.0);
}

void
ApiStats::noteDraw(geom::PrimitiveType topology, int index_count,
                   int bytes_per_index, int vs_instructions,
                   int fs_instructions, int fs_tex_instructions)
{
    ++_batches;
    ++_frameBatches;
    _indices += static_cast<std::uint64_t>(index_count);
    _indexBytes +=
        static_cast<std::uint64_t>(index_count) * bytes_per_index;
    _primsByType[static_cast<std::size_t>(topology)] +=
        static_cast<std::uint64_t>(
            geom::trianglesForIndices(topology, index_count));
    _vsInstrWeighted +=
        static_cast<double>(vs_instructions) * index_count;
    _fsInstrSum += fs_instructions;
    _fsTexSum += fs_tex_instructions;
    _frameFsInstr += fs_instructions;
    _frameFsTex += fs_tex_instructions;

    _series.record("batches", 1.0);
    _series.record("indices", index_count);
    _series.record("index_bytes",
                   static_cast<double>(index_count) * bytes_per_index);
    _series.record("primitives",
                   geom::trianglesForIndices(topology, index_count));
}

void
ApiStats::noteEndFrame()
{
    ++_frames;
    if (_frameBatches > 0) {
        _series.record("fs_instr_avg",
                       _frameFsInstr / static_cast<double>(_frameBatches));
        _series.record("fs_tex_avg",
                       _frameFsTex / static_cast<double>(_frameBatches));
    }
    _frameBatches = 0;
    _frameFsInstr = 0.0;
    _frameFsTex = 0.0;
    _series.endFrame();
}

std::uint64_t
ApiStats::primitives() const
{
    return _primsByType[0] + _primsByType[1] + _primsByType[2];
}

std::uint64_t
ApiStats::primitivesOfType(geom::PrimitiveType t) const
{
    return _primsByType[static_cast<std::size_t>(t)];
}

double
ApiStats::avgIndicesPerBatch() const
{
    return _batches ? static_cast<double>(_indices) / _batches : 0.0;
}

double
ApiStats::avgIndicesPerFrame() const
{
    return _frames ? static_cast<double>(_indices) / _frames : 0.0;
}

double
ApiStats::avgPrimitivesPerFrame() const
{
    return _frames ? static_cast<double>(primitives()) / _frames : 0.0;
}

double
ApiStats::avgBatchesPerFrame() const
{
    return _frames ? static_cast<double>(_batches) / _frames : 0.0;
}

double
ApiStats::avgStateCallsPerFrame() const
{
    return _frames ? static_cast<double>(_stateCalls) / _frames : 0.0;
}

double
ApiStats::avgIndexBytesPerFrame() const
{
    return _frames ? static_cast<double>(_indexBytes) / _frames : 0.0;
}

double
ApiStats::indexBwAtFps(double fps) const
{
    return avgIndexBytesPerFrame() * fps;
}

double
ApiStats::primitiveSharePct(geom::PrimitiveType t) const
{
    std::uint64_t total = primitives();
    return total ? 100.0 * static_cast<double>(primitivesOfType(t)) /
                       static_cast<double>(total)
                 : 0.0;
}

double
ApiStats::avgVertexShaderInstructions() const
{
    return _indices ? _vsInstrWeighted / static_cast<double>(_indices)
                    : 0.0;
}

double
ApiStats::avgFragmentInstructions() const
{
    return _batches ? _fsInstrSum / static_cast<double>(_batches) : 0.0;
}

double
ApiStats::avgFragmentTexInstructions() const
{
    return _batches ? _fsTexSum / static_cast<double>(_batches) : 0.0;
}

double
ApiStats::aluToTexRatio() const
{
    double tex = avgFragmentTexInstructions();
    double alu = avgFragmentInstructions() - tex;
    return tex > 0.0 ? alu / tex : alu;
}

} // namespace wc3d::api
