/**
 * @file
 * API-call-level statistics. This collector implements the paper's
 * Section III.A/B/D API metrics: batches per frame (Fig. 1), index
 * volume and bandwidth (Table III, Fig. 2), state calls per frame
 * (Fig. 3), primitive utilization (Table V), vertex shader length
 * (Table IV) and fragment shader composition (Table XII, Fig. 8).
 */

#ifndef WC3D_API_APISTATS_HH
#define WC3D_API_APISTATS_HH

#include <array>
#include <cstdint>

#include "geom/types.hh"
#include "stats/series.hh"

namespace wc3d::api {

/** Whole-run aggregate + per-frame series of API-level quantities. */
class ApiStats
{
  public:
    /** A non-draw, non-frame-boundary API call happened. */
    void noteStateCall();

    /**
     * A draw batch was submitted.
     *
     * @param topology     primitive topology
     * @param index_count  indices in the batch
     * @param bytes_per_index 2 or 4
     * @param vs_instructions bound vertex program length
     * @param fs_instructions bound fragment program length
     * @param fs_tex_instructions texture instructions in that program
     */
    void noteDraw(geom::PrimitiveType topology, int index_count,
                  int bytes_per_index, int vs_instructions,
                  int fs_instructions, int fs_tex_instructions);

    /** A frame boundary (present). */
    void noteEndFrame();

    /** @name Aggregates over the whole run */
    /// @{
    std::uint64_t frames() const { return _frames; }
    std::uint64_t batches() const { return _batches; }
    std::uint64_t indices() const { return _indices; }
    std::uint64_t indexBytes() const { return _indexBytes; }
    std::uint64_t stateCalls() const { return _stateCalls; }
    std::uint64_t primitives() const;
    std::uint64_t primitivesOfType(geom::PrimitiveType t) const;

    double avgIndicesPerBatch() const;
    double avgIndicesPerFrame() const;
    double avgPrimitivesPerFrame() const;
    double avgBatchesPerFrame() const;
    double avgStateCallsPerFrame() const;
    double avgIndexBytesPerFrame() const;

    /** Index bandwidth in bytes/s at @p fps (Table III "BW@100fps"). */
    double indexBwAtFps(double fps) const;

    /** Share of primitives using topology @p t, in percent. */
    double primitiveSharePct(geom::PrimitiveType t) const;

    /** Average vertex program instructions, weighted per index. */
    double avgVertexShaderInstructions() const;

    /** Average fragment program length / texture count per batch. */
    double avgFragmentInstructions() const;
    double avgFragmentTexInstructions() const;

    /** ALU:TEX ratio of the average fragment program (Table XII). */
    double aluToTexRatio() const;
    /// @}

    /** Per-frame series: "batches", "indices", "index_bytes",
     *  "state_calls", "fs_instr_avg", "fs_tex_avg". */
    const stats::FrameSeries &series() const { return _series; }

  private:
    std::uint64_t _frames = 0;
    std::uint64_t _batches = 0;
    std::uint64_t _indices = 0;
    std::uint64_t _indexBytes = 0;
    std::uint64_t _stateCalls = 0;
    std::array<std::uint64_t, 3> _primsByType{};
    double _vsInstrWeighted = 0.0;   // sum(vs_len * indices)
    double _fsInstrSum = 0.0;        // sum over batches
    double _fsTexSum = 0.0;

    // Current-frame accumulators for the series.
    std::uint64_t _frameBatches = 0;
    double _frameFsInstr = 0.0;
    double _frameFsTex = 0.0;

    stats::FrameSeries _series;
};

} // namespace wc3d::api

#endif // WC3D_API_APISTATS_HH
