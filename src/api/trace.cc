#include "api/trace.hh"

#include <cstring>

#include "api/device.hh"
#include "common/log.hh"

namespace wc3d::api {

namespace {

constexpr char kMagic[8] = {'W', 'C', '3', 'D', 'T', 'R', 'C', '1'};

/** Little-endian primitive writers/readers over stdio. */
struct Out
{
    std::FILE *f;

    void
    bytes(const void *p, std::size_t n)
    {
        if (std::fwrite(p, 1, n, f) != n)
            fatal("trace: short write");
    }

    void u8(std::uint8_t v) { bytes(&v, 1); }
    void
    u32(std::uint32_t v)
    {
        std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 24)};
        bytes(b, 4);
    }
    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }
    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        u32(bits);
    }
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }
    void
    vec4(const Vec4 &v)
    {
        f32(v.x);
        f32(v.y);
        f32(v.z);
        f32(v.w);
    }
};

struct In
{
    std::FILE *f;
    bool failed = false;

    bool
    bytes(void *p, std::size_t n)
    {
        if (std::fread(p, 1, n, f) != n) {
            failed = true;
            return false;
        }
        return true;
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        bytes(&v, 1);
        return v;
    }
    std::uint32_t
    u32()
    {
        std::uint8_t b[4] = {};
        bytes(b, 4);
        return static_cast<std::uint32_t>(b[0]) |
               (static_cast<std::uint32_t>(b[1]) << 8) |
               (static_cast<std::uint32_t>(b[2]) << 16) |
               (static_cast<std::uint32_t>(b[3]) << 24);
    }
    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        std::uint64_t hi = u32();
        return lo | (hi << 32);
    }
    float
    f32()
    {
        std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, 4);
        return v;
    }
    std::string
    str()
    {
        std::uint32_t n = u32();
        if (failed || n > (1u << 30)) {
            failed = true;
            return {};
        }
        std::string s(n, '\0');
        bytes(s.data(), n);
        return s;
    }
    Vec4
    vec4()
    {
        Vec4 v;
        v.x = f32();
        v.y = f32();
        v.z = f32();
        v.w = f32();
        return v;
    }
};

void
writeDepthStencil(Out &o, const frag::DepthStencilState &s)
{
    o.u8(s.depthTest);
    o.u8(static_cast<std::uint8_t>(s.depthFunc));
    o.u8(s.depthWrite);
    o.u8(s.stencilTest);
    for (const frag::StencilFace *face : {&s.front, &s.back}) {
        o.u8(static_cast<std::uint8_t>(face->func));
        o.u8(face->ref);
        o.u8(face->readMask);
        o.u8(face->writeMask);
        o.u8(static_cast<std::uint8_t>(face->sfail));
        o.u8(static_cast<std::uint8_t>(face->zfail));
        o.u8(static_cast<std::uint8_t>(face->zpass));
    }
}

frag::DepthStencilState
readDepthStencil(In &i)
{
    frag::DepthStencilState s;
    s.depthTest = i.u8();
    s.depthFunc = static_cast<frag::CompareFunc>(i.u8());
    s.depthWrite = i.u8();
    s.stencilTest = i.u8();
    for (frag::StencilFace *face : {&s.front, &s.back}) {
        face->func = static_cast<frag::CompareFunc>(i.u8());
        face->ref = i.u8();
        face->readMask = i.u8();
        face->writeMask = i.u8();
        face->sfail = static_cast<frag::StencilOp>(i.u8());
        face->zfail = static_cast<frag::StencilOp>(i.u8());
        face->zpass = static_cast<frag::StencilOp>(i.u8());
    }
    return s;
}

void
writeBlend(Out &o, const frag::BlendState &s)
{
    o.u8(s.enabled);
    o.u8(static_cast<std::uint8_t>(s.srcFactor));
    o.u8(static_cast<std::uint8_t>(s.dstFactor));
    o.u8(static_cast<std::uint8_t>(s.op));
    o.u8(s.colorWriteMask);
}

frag::BlendState
readBlend(In &i)
{
    frag::BlendState s;
    s.enabled = i.u8();
    s.srcFactor = static_cast<frag::BlendFactor>(i.u8());
    s.dstFactor = static_cast<frag::BlendFactor>(i.u8());
    s.op = static_cast<frag::BlendOp>(i.u8());
    s.colorWriteMask = i.u8();
    return s;
}

void
writeSampler(Out &o, const tex::SamplerState &s)
{
    o.u8(static_cast<std::uint8_t>(s.filter));
    o.u8(static_cast<std::uint8_t>(s.wrap));
    o.u32(static_cast<std::uint32_t>(s.maxAniso));
    o.f32(s.lodBias);
}

tex::SamplerState
readSampler(In &i)
{
    tex::SamplerState s;
    s.filter = static_cast<tex::TexFilter>(i.u8());
    s.wrap = static_cast<tex::TexWrap>(i.u8());
    s.maxAniso = static_cast<int>(i.u32());
    s.lodBias = i.f32();
    return s;
}

void
writeTextureSpec(Out &o, const TextureSpec &s)
{
    o.u8(static_cast<std::uint8_t>(s.kind));
    o.u32(static_cast<std::uint32_t>(s.size));
    o.u32(static_cast<std::uint32_t>(s.cell));
    o.u64(s.seed);
    o.u32(s.colorA.packed());
    o.u32(s.colorB.packed());
    o.u8(static_cast<std::uint8_t>(s.format));
    o.u8(s.alphaNoise);
}

TextureSpec
readTextureSpec(In &i)
{
    TextureSpec s;
    s.kind = static_cast<TextureSpec::Kind>(i.u8());
    s.size = static_cast<int>(i.u32());
    s.cell = static_cast<int>(i.u32());
    s.seed = i.u64();
    s.colorA = Rgba8::fromPacked(i.u32());
    s.colorB = Rgba8::fromPacked(i.u32());
    s.format = static_cast<tex::TexFormat>(i.u8());
    s.alphaNoise = i.u8();
    return s;
}

struct WriteVisitor
{
    Out &o;

    void
    operator()(const CreateVertexBufferCmd &c)
    {
        o.u32(c.id);
        o.u32(static_cast<std::uint32_t>(c.data.strideFloats));
        o.u32(static_cast<std::uint32_t>(c.data.vertices.size()));
        for (const VertexData &v : c.data.vertices) {
            o.f32(v.position.x);
            o.f32(v.position.y);
            o.f32(v.position.z);
            o.f32(v.normal.x);
            o.f32(v.normal.y);
            o.f32(v.normal.z);
            o.f32(v.uv.x);
            o.f32(v.uv.y);
            o.vec4(v.color);
        }
    }

    void
    operator()(const CreateIndexBufferCmd &c)
    {
        o.u32(c.id);
        o.u8(static_cast<std::uint8_t>(c.data.type));
        o.u32(static_cast<std::uint32_t>(c.data.indices.size()));
        for (std::uint32_t idx : c.data.indices)
            o.u32(idx);
    }

    void
    operator()(const CreateTextureCmd &c)
    {
        o.u32(c.id);
        writeTextureSpec(o, c.spec);
    }

    void
    operator()(const CreateProgramCmd &c)
    {
        o.u32(c.id);
        o.u8(static_cast<std::uint8_t>(c.kind));
        o.str(c.source);
    }

    void
    operator()(const BindProgramCmd &c)
    {
        o.u8(static_cast<std::uint8_t>(c.kind));
        o.u32(c.id);
    }

    void
    operator()(const BindTextureCmd &c)
    {
        o.u32(c.unit);
        o.u32(c.id);
        writeSampler(o, c.sampler);
    }

    void operator()(const SetDepthStencilCmd &c)
    { writeDepthStencil(o, c.state); }

    void operator()(const SetBlendCmd &c) { writeBlend(o, c.state); }

    void
    operator()(const SetCullModeCmd &c)
    {
        o.u8(static_cast<std::uint8_t>(c.mode));
    }

    void
    operator()(const SetConstantCmd &c)
    {
        o.u8(static_cast<std::uint8_t>(c.kind));
        o.u32(c.index);
        o.vec4(c.value);
    }

    void
    operator()(const ClearCmd &c)
    {
        o.u8(c.color);
        o.u8(c.depth);
        o.u8(c.stencil);
        o.u32(c.colorValue);
        o.f32(c.depthValue);
        o.u8(c.stencilValue);
    }

    void
    operator()(const DrawCmd &c)
    {
        o.u32(c.vertexBuffer);
        o.u32(c.indexBuffer);
        o.u32(c.firstIndex);
        o.u32(c.indexCount);
        o.u8(static_cast<std::uint8_t>(c.topology));
    }

    void operator()(const EndFrameCmd &) {}
};

std::optional<Command>
readCommand(In &in)
{
    int tag_int = std::fgetc(in.f);
    if (tag_int == EOF)
        return std::nullopt;
    auto tag = static_cast<std::uint8_t>(tag_int);

    Command cmd;
    switch (tag) {
      case 0: {
        CreateVertexBufferCmd c;
        c.id = in.u32();
        c.data.strideFloats = static_cast<int>(in.u32());
        std::uint32_t n = in.u32();
        if (in.failed || n > (1u << 28))
            return std::nullopt;
        c.data.vertices.resize(n);
        for (VertexData &v : c.data.vertices) {
            v.position = {in.f32(), in.f32(), in.f32()};
            v.normal = {in.f32(), in.f32(), in.f32()};
            v.uv = {in.f32(), in.f32()};
            v.color = in.vec4();
        }
        cmd = std::move(c);
        break;
      }
      case 1: {
        CreateIndexBufferCmd c;
        c.id = in.u32();
        c.data.type = static_cast<IndexType>(in.u8());
        std::uint32_t n = in.u32();
        if (in.failed || n > (1u << 28))
            return std::nullopt;
        c.data.indices.resize(n);
        for (auto &idx : c.data.indices)
            idx = in.u32();
        cmd = std::move(c);
        break;
      }
      case 2: {
        CreateTextureCmd c;
        c.id = in.u32();
        c.spec = readTextureSpec(in);
        cmd = c;
        break;
      }
      case 3: {
        CreateProgramCmd c;
        c.id = in.u32();
        c.kind = static_cast<shader::ProgramKind>(in.u8());
        c.source = in.str();
        cmd = std::move(c);
        break;
      }
      case 4: {
        BindProgramCmd c;
        c.kind = static_cast<shader::ProgramKind>(in.u8());
        c.id = in.u32();
        cmd = c;
        break;
      }
      case 5: {
        BindTextureCmd c;
        c.unit = in.u32();
        c.id = in.u32();
        c.sampler = readSampler(in);
        cmd = c;
        break;
      }
      case 6:
        cmd = SetDepthStencilCmd{readDepthStencil(in)};
        break;
      case 7:
        cmd = SetBlendCmd{readBlend(in)};
        break;
      case 8:
        cmd = SetCullModeCmd{static_cast<geom::CullMode>(in.u8())};
        break;
      case 9: {
        SetConstantCmd c;
        c.kind = static_cast<shader::ProgramKind>(in.u8());
        c.index = in.u32();
        c.value = in.vec4();
        cmd = c;
        break;
      }
      case 10: {
        ClearCmd c;
        c.color = in.u8();
        c.depth = in.u8();
        c.stencil = in.u8();
        c.colorValue = in.u32();
        c.depthValue = in.f32();
        c.stencilValue = in.u8();
        cmd = c;
        break;
      }
      case 11: {
        DrawCmd c;
        c.vertexBuffer = in.u32();
        c.indexBuffer = in.u32();
        c.firstIndex = in.u32();
        c.indexCount = in.u32();
        c.topology = static_cast<geom::PrimitiveType>(in.u8());
        cmd = c;
        break;
      }
      case 12:
        cmd = EndFrameCmd{};
        break;
      default:
        warn("trace: unknown command tag %u", tag);
        return std::nullopt;
    }
    if (in.failed)
        return std::nullopt;
    return cmd;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
{
    _file = std::fopen(path.c_str(), "wb");
    if (!_file)
        fatal("trace: cannot open '%s' for writing", path.c_str());
    Out out{_file};
    out.bytes(kMagic, sizeof(kMagic));
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::write(const Command &cmd)
{
    WC3D_ASSERT(_file);
    Out out{_file};
    out.u8(static_cast<std::uint8_t>(cmd.index()));
    std::visit(WriteVisitor{out}, cmd);
    ++_count;
}

void
TraceWriter::close()
{
    if (_file) {
        std::fclose(_file);
        _file = nullptr;
    }
}

TraceReader::TraceReader(const std::string &path)
{
    _file = std::fopen(path.c_str(), "rb");
    if (!_file)
        return;
    char magic[8] = {};
    if (std::fread(magic, 1, 8, _file) == 8 &&
        std::memcmp(magic, kMagic, 8) == 0) {
        _ok = true;
    }
}

TraceReader::~TraceReader()
{
    if (_file)
        std::fclose(_file);
}

std::optional<Command>
TraceReader::next()
{
    if (!_ok || !_file)
        return std::nullopt;
    In in{_file};
    return readCommand(in);
}

std::uint64_t
playTrace(TraceReader &reader, Device &device)
{
    std::uint64_t count = 0;
    while (auto cmd = reader.next()) {
        device.submit(*cmd);
        ++count;
    }
    return count;
}

} // namespace wc3d::api
