#include "api/trace.hh"

#include <cmath>
#include <cstring>
#include <vector>

#include "api/device.hh"
#include "common/log.hh"
#include "common/strutil.hh"

namespace wc3d::api {

namespace {

constexpr char kMagic[8] = {'W', 'C', '3', 'D', 'T', 'R', 'C', '2'};

/** Highest valid command tag (= index of EndFrameCmd in Command). */
constexpr std::uint8_t kMaxTag =
    static_cast<std::uint8_t>(std::variant_size_v<Command> - 1);

/** Bytes one vertex occupies in the stream: 12 floats. */
constexpr std::size_t kVertexStreamBytes = 12 * 4;

/** Little-endian primitive writers into a growable buffer. Records are
 *  serialized here first so the writer can frame them with an exact
 *  payload length. */
struct Out
{
    std::string &buf;

    void
    bytes(const void *p, std::size_t n)
    {
        buf.append(static_cast<const char *>(p), n);
    }

    void u8(std::uint8_t v) { bytes(&v, 1); }
    void
    u32(std::uint32_t v)
    {
        std::uint8_t b[4] = {static_cast<std::uint8_t>(v),
                             static_cast<std::uint8_t>(v >> 8),
                             static_cast<std::uint8_t>(v >> 16),
                             static_cast<std::uint8_t>(v >> 24)};
        bytes(b, 4);
    }
    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }
    void
    f32(float v)
    {
        std::uint32_t bits;
        std::memcpy(&bits, &v, 4);
        u32(bits);
    }
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        bytes(s.data(), s.size());
    }
    void
    vec4(const Vec4 &v)
    {
        f32(v.x);
        f32(v.y);
        f32(v.z);
        f32(v.w);
    }
};

/**
 * Validating little-endian reader over one record's payload bytes.
 * The first failure is latched with the absolute file offset of the
 * offending field; every later read is a no-op returning zeros, so
 * record decoders can read straight through without checking each
 * primitive.
 */
struct Cursor
{
    const unsigned char *data;
    std::size_t size;
    std::uint64_t base; ///< file offset of data[0]
    std::size_t pos = 0;
    std::optional<TraceError> err;

    bool failed() const { return err.has_value(); }
    std::size_t remaining() const { return size - pos; }

    void
    failAt(std::size_t at, std::string reason)
    {
        if (!err)
            err = TraceError{base + at, std::move(reason)};
    }

    bool
    take(void *p, std::size_t n)
    {
        if (failed())
            return false;
        if (n > remaining()) {
            failAt(pos, format("record payload truncated: field needs "
                               "%zu bytes, %zu left",
                               n, remaining()));
            return false;
        }
        std::memcpy(p, data + pos, n);
        pos += n;
        return true;
    }

    std::uint8_t
    u8()
    {
        std::uint8_t v = 0;
        take(&v, 1);
        return v;
    }
    std::uint32_t
    u32()
    {
        std::uint8_t b[4] = {};
        take(b, 4);
        return static_cast<std::uint32_t>(b[0]) |
               (static_cast<std::uint32_t>(b[1]) << 8) |
               (static_cast<std::uint32_t>(b[2]) << 16) |
               (static_cast<std::uint32_t>(b[3]) << 24);
    }
    std::uint64_t
    u64()
    {
        std::uint64_t lo = u32();
        std::uint64_t hi = u32();
        return lo | (hi << 32);
    }
    float
    f32()
    {
        std::uint32_t bits = u32();
        float v;
        std::memcpy(&v, &bits, 4);
        return v;
    }
    std::string
    str(const char *name, std::uint32_t max_bytes)
    {
        std::size_t at = pos;
        std::uint32_t n = u32();
        if (failed())
            return {};
        if (n > max_bytes) {
            failAt(at, format("%s length %u exceeds cap %u", name, n,
                              max_bytes));
            return {};
        }
        if (n > remaining()) {
            failAt(at, format("%s length %u exceeds the %zu payload "
                              "bytes left",
                              name, n, remaining()));
            return {};
        }
        std::string s(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return s;
    }
    Vec4
    vec4()
    {
        Vec4 v;
        v.x = f32();
        v.y = f32();
        v.z = f32();
        v.w = f32();
        return v;
    }

    /** A bool serialized as one byte; anything but 0/1 is corruption. */
    bool
    boolean(const char *name)
    {
        std::size_t at = pos;
        std::uint8_t v = u8();
        if (!failed() && v > 1)
            failAt(at, format("%s: invalid bool byte %u", name, v));
        return v == 1;
    }

    /** An enum serialized as one byte, validated against its range. */
    template <typename E>
    E
    enum8(const char *name, E max_value)
    {
        std::size_t at = pos;
        std::uint8_t v = u8();
        auto max_raw = static_cast<std::uint8_t>(max_value);
        if (!failed() && v > max_raw) {
            failAt(at, format("%s out of range: %u > %u", name, v,
                              max_raw));
            return E{};
        }
        return static_cast<E>(v);
    }

    /** A float that must be finite (samplers, not bulk vertex data). */
    float
    finiteF32(const char *name)
    {
        std::size_t at = pos;
        float v = f32();
        if (!failed() && !std::isfinite(v)) {
            failAt(at, format("%s: non-finite float", name));
            return 0.0f;
        }
        return v;
    }

    /**
     * An element count for a payload of @p elem_bytes-sized elements.
     * Rejecting counts the remaining payload cannot hold bounds every
     * allocation by the record size, so a corrupt count can never
     * over-allocate.
     */
    std::uint32_t
    count(const char *name, std::uint32_t cap, std::size_t elem_bytes)
    {
        std::size_t at = pos;
        std::uint32_t n = u32();
        if (failed())
            return 0;
        if (n > cap) {
            failAt(at,
                   format("%s %u exceeds cap %u", name, n, cap));
            return 0;
        }
        if (static_cast<std::uint64_t>(n) * elem_bytes > remaining()) {
            failAt(at, format("%s %u needs %llu bytes but only %zu "
                              "remain in the record",
                              name, n,
                              static_cast<unsigned long long>(
                                  static_cast<std::uint64_t>(n) *
                                  elem_bytes),
                              remaining()));
            return 0;
        }
        return n;
    }
};

void
writeDepthStencil(Out &o, const frag::DepthStencilState &s)
{
    o.u8(s.depthTest);
    o.u8(static_cast<std::uint8_t>(s.depthFunc));
    o.u8(s.depthWrite);
    o.u8(s.stencilTest);
    for (const frag::StencilFace *face : {&s.front, &s.back}) {
        o.u8(static_cast<std::uint8_t>(face->func));
        o.u8(face->ref);
        o.u8(face->readMask);
        o.u8(face->writeMask);
        o.u8(static_cast<std::uint8_t>(face->sfail));
        o.u8(static_cast<std::uint8_t>(face->zfail));
        o.u8(static_cast<std::uint8_t>(face->zpass));
    }
}

frag::DepthStencilState
readDepthStencil(Cursor &c)
{
    frag::DepthStencilState s;
    s.depthTest = c.boolean("depthTest");
    s.depthFunc = c.enum8("depthFunc", frag::CompareFunc::Always);
    s.depthWrite = c.boolean("depthWrite");
    s.stencilTest = c.boolean("stencilTest");
    for (frag::StencilFace *face : {&s.front, &s.back}) {
        face->func = c.enum8("stencil func", frag::CompareFunc::Always);
        face->ref = c.u8();
        face->readMask = c.u8();
        face->writeMask = c.u8();
        face->sfail = c.enum8("stencil sfail", frag::StencilOp::Invert);
        face->zfail = c.enum8("stencil zfail", frag::StencilOp::Invert);
        face->zpass = c.enum8("stencil zpass", frag::StencilOp::Invert);
    }
    return s;
}

void
writeBlend(Out &o, const frag::BlendState &s)
{
    o.u8(s.enabled);
    o.u8(static_cast<std::uint8_t>(s.srcFactor));
    o.u8(static_cast<std::uint8_t>(s.dstFactor));
    o.u8(static_cast<std::uint8_t>(s.op));
    o.u8(s.colorWriteMask);
}

frag::BlendState
readBlend(Cursor &c)
{
    frag::BlendState s;
    s.enabled = c.boolean("blend enabled");
    s.srcFactor =
        c.enum8("srcFactor", frag::BlendFactor::InvDstAlpha);
    s.dstFactor =
        c.enum8("dstFactor", frag::BlendFactor::InvDstAlpha);
    s.op = c.enum8("blend op", frag::BlendOp::Max);
    s.colorWriteMask = c.u8();
    return s;
}

void
writeSampler(Out &o, const tex::SamplerState &s)
{
    o.u8(static_cast<std::uint8_t>(s.filter));
    o.u8(static_cast<std::uint8_t>(s.wrap));
    o.u32(static_cast<std::uint32_t>(s.maxAniso));
    o.f32(s.lodBias);
}

tex::SamplerState
readSampler(Cursor &c)
{
    tex::SamplerState s;
    s.filter = c.enum8("tex filter", tex::TexFilter::Anisotropic);
    s.wrap = c.enum8("tex wrap", tex::TexWrap::Clamp);
    std::size_t at = c.pos;
    std::uint32_t aniso = c.u32();
    if (!c.failed() &&
        (aniso < 1 ||
         aniso > static_cast<std::uint32_t>(kTraceMaxAniso))) {
        c.failAt(at, format("maxAniso %u outside [1, %d]", aniso,
                            kTraceMaxAniso));
    }
    s.maxAniso = static_cast<int>(aniso);
    s.lodBias = c.finiteF32("lodBias");
    return s;
}

void
writeTextureSpec(Out &o, const TextureSpec &s)
{
    o.u8(static_cast<std::uint8_t>(s.kind));
    o.u32(static_cast<std::uint32_t>(s.size));
    o.u32(static_cast<std::uint32_t>(s.cell));
    o.u64(s.seed);
    o.u32(s.colorA.packed());
    o.u32(s.colorB.packed());
    o.u8(static_cast<std::uint8_t>(s.format));
    o.u8(s.alphaNoise);
}

TextureSpec
readTextureSpec(Cursor &c)
{
    TextureSpec s;
    s.kind = c.enum8("texture kind", TextureSpec::Kind::Gradient);
    std::size_t at = c.pos;
    std::uint32_t size = c.u32();
    if (!c.failed() &&
        (size < 1 ||
         size > static_cast<std::uint32_t>(kTraceMaxTextureSize))) {
        c.failAt(at, format("texture size %u outside [1, %d]", size,
                            kTraceMaxTextureSize));
    }
    s.size = static_cast<int>(size);
    at = c.pos;
    std::uint32_t cell = c.u32();
    if (!c.failed() && (cell < 1 || cell > size)) {
        c.failAt(at, format("texture cell %u outside [1, size=%u]",
                            cell, size));
    }
    s.cell = static_cast<int>(cell);
    s.seed = c.u64();
    s.colorA = Rgba8::fromPacked(c.u32());
    s.colorB = Rgba8::fromPacked(c.u32());
    s.format = c.enum8("texture format", tex::TexFormat::DXT5);
    s.alphaNoise = c.boolean("alphaNoise");
    return s;
}

struct WriteVisitor
{
    Out &o;

    void
    operator()(const CreateVertexBufferCmd &c)
    {
        o.u32(c.id);
        o.u32(static_cast<std::uint32_t>(c.data.strideFloats));
        o.u32(static_cast<std::uint32_t>(c.data.vertices.size()));
        for (const VertexData &v : c.data.vertices) {
            o.f32(v.position.x);
            o.f32(v.position.y);
            o.f32(v.position.z);
            o.f32(v.normal.x);
            o.f32(v.normal.y);
            o.f32(v.normal.z);
            o.f32(v.uv.x);
            o.f32(v.uv.y);
            o.vec4(v.color);
        }
    }

    void
    operator()(const CreateIndexBufferCmd &c)
    {
        o.u32(c.id);
        o.u8(static_cast<std::uint8_t>(c.data.type));
        o.u32(static_cast<std::uint32_t>(c.data.indices.size()));
        for (std::uint32_t idx : c.data.indices)
            o.u32(idx);
    }

    void
    operator()(const CreateTextureCmd &c)
    {
        o.u32(c.id);
        writeTextureSpec(o, c.spec);
    }

    void
    operator()(const CreateProgramCmd &c)
    {
        o.u32(c.id);
        o.u8(static_cast<std::uint8_t>(c.kind));
        o.str(c.source);
    }

    void
    operator()(const BindProgramCmd &c)
    {
        o.u8(static_cast<std::uint8_t>(c.kind));
        o.u32(c.id);
    }

    void
    operator()(const BindTextureCmd &c)
    {
        o.u32(c.unit);
        o.u32(c.id);
        writeSampler(o, c.sampler);
    }

    void operator()(const SetDepthStencilCmd &c)
    { writeDepthStencil(o, c.state); }

    void operator()(const SetBlendCmd &c) { writeBlend(o, c.state); }

    void
    operator()(const SetCullModeCmd &c)
    {
        o.u8(static_cast<std::uint8_t>(c.mode));
    }

    void
    operator()(const SetConstantCmd &c)
    {
        o.u8(static_cast<std::uint8_t>(c.kind));
        o.u32(c.index);
        o.vec4(c.value);
    }

    void
    operator()(const ClearCmd &c)
    {
        o.u8(c.color);
        o.u8(c.depth);
        o.u8(c.stencil);
        o.u32(c.colorValue);
        o.f32(c.depthValue);
        o.u8(c.stencilValue);
    }

    void
    operator()(const DrawCmd &c)
    {
        o.u32(c.vertexBuffer);
        o.u32(c.indexBuffer);
        o.u32(c.firstIndex);
        o.u32(c.indexCount);
        o.u8(static_cast<std::uint8_t>(c.topology));
    }

    void operator()(const EndFrameCmd &) {}
};

/** Decode one record payload; validation errors land in @p c.err. */
Command
readCommand(Cursor &c, std::uint8_t tag)
{
    Command cmd;
    switch (tag) {
      case 0: {
        CreateVertexBufferCmd v;
        v.id = c.u32();
        std::size_t at = c.pos;
        std::uint32_t stride = c.u32();
        if (!c.failed() &&
            (stride < static_cast<std::uint32_t>(kVertexLayoutFloats) ||
             stride >
                 static_cast<std::uint32_t>(kTraceMaxStrideFloats))) {
            c.failAt(at, format("vertex stride %u outside [%d, %d]",
                                stride, kVertexLayoutFloats,
                                kTraceMaxStrideFloats));
        }
        v.data.strideFloats = static_cast<int>(stride);
        std::uint32_t n = c.count("vertex count", kTraceMaxVertices,
                                  kVertexStreamBytes);
        if (c.failed())
            break;
        v.data.vertices.resize(n);
        for (VertexData &vd : v.data.vertices) {
            vd.position = {c.f32(), c.f32(), c.f32()};
            vd.normal = {c.f32(), c.f32(), c.f32()};
            vd.uv = {c.f32(), c.f32()};
            vd.color = c.vec4();
        }
        cmd = std::move(v);
        break;
      }
      case 1: {
        CreateIndexBufferCmd v;
        v.id = c.u32();
        v.data.type = c.enum8("IndexType", IndexType::U32);
        std::uint32_t n =
            c.count("index count", kTraceMaxIndices, 4);
        if (c.failed())
            break;
        v.data.indices.resize(n);
        for (auto &idx : v.data.indices)
            idx = c.u32();
        cmd = std::move(v);
        break;
      }
      case 2: {
        CreateTextureCmd v;
        v.id = c.u32();
        v.spec = readTextureSpec(c);
        cmd = v;
        break;
      }
      case 3: {
        CreateProgramCmd v;
        v.id = c.u32();
        v.kind = c.enum8("ProgramKind", shader::ProgramKind::Fragment);
        v.source = c.str("program source", kTraceMaxStringBytes);
        cmd = std::move(v);
        break;
      }
      case 4: {
        BindProgramCmd v;
        v.kind = c.enum8("ProgramKind", shader::ProgramKind::Fragment);
        v.id = c.u32();
        cmd = v;
        break;
      }
      case 5: {
        BindTextureCmd v;
        v.unit = c.u32();
        v.id = c.u32();
        v.sampler = readSampler(c);
        cmd = v;
        break;
      }
      case 6:
        cmd = SetDepthStencilCmd{readDepthStencil(c)};
        break;
      case 7:
        cmd = SetBlendCmd{readBlend(c)};
        break;
      case 8:
        cmd = SetCullModeCmd{
            c.enum8("CullMode", geom::CullMode::Front)};
        break;
      case 9: {
        SetConstantCmd v;
        v.kind = c.enum8("ProgramKind", shader::ProgramKind::Fragment);
        v.index = c.u32();
        v.value = c.vec4();
        cmd = v;
        break;
      }
      case 10: {
        ClearCmd v;
        v.color = c.boolean("clear color flag");
        v.depth = c.boolean("clear depth flag");
        v.stencil = c.boolean("clear stencil flag");
        v.colorValue = c.u32();
        v.depthValue = c.f32();
        v.stencilValue = c.u8();
        cmd = v;
        break;
      }
      case 11: {
        DrawCmd v;
        v.vertexBuffer = c.u32();
        v.indexBuffer = c.u32();
        v.firstIndex = c.u32();
        v.indexCount = c.u32();
        v.topology =
            c.enum8("PrimitiveType", geom::PrimitiveType::TriangleFan);
        cmd = v;
        break;
      }
      case 12:
        cmd = EndFrameCmd{};
        break;
      default:
        // next() rejects unknown tags before decoding.
        c.failAt(0, format("unknown command tag %u", tag));
        break;
    }
    return cmd;
}

} // namespace

std::string
TraceError::describe() const
{
    return format("byte %llu: %s",
                  static_cast<unsigned long long>(offset),
                  reason.c_str());
}

TraceWriter::TraceWriter(const std::string &path)
{
    _file = std::fopen(path.c_str(), "wb");
    if (!_file) {
        fail(0, format("cannot open '%s' for writing", path.c_str()));
        return;
    }
    if (std::fwrite(kMagic, 1, sizeof(kMagic), _file) !=
        sizeof(kMagic)) {
        fail(0, "short write on trace header");
        return;
    }
    _offset = sizeof(kMagic);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::fail(std::uint64_t offset, std::string reason)
{
    if (_error)
        return;
    _error = TraceError{offset, std::move(reason)};
    warn("trace write failed at byte %llu: %s",
         static_cast<unsigned long long>(offset),
         _error->reason.c_str());
}

bool
TraceWriter::write(const Command &cmd)
{
    if (_error)
        return false;
    if (!_file) {
        fail(_offset, "write after close");
        return false;
    }
    std::string payload;
    Out out{payload};
    std::visit(WriteVisitor{out}, cmd);

    std::uint8_t header[5] = {
        static_cast<std::uint8_t>(cmd.index()),
        static_cast<std::uint8_t>(payload.size()),
        static_cast<std::uint8_t>(payload.size() >> 8),
        static_cast<std::uint8_t>(payload.size() >> 16),
        static_cast<std::uint8_t>(payload.size() >> 24)};
    if (std::fwrite(header, 1, sizeof(header), _file) !=
            sizeof(header) ||
        std::fwrite(payload.data(), 1, payload.size(), _file) !=
            payload.size()) {
        fail(_offset, format("short write on %s record",
                             commandName(cmd)));
        return false;
    }
    _offset += sizeof(header) + payload.size();
    ++_count;
    return true;
}

bool
TraceWriter::close()
{
    if (_file) {
        bool flushed = std::fclose(_file) == 0;
        _file = nullptr;
        if (!flushed)
            fail(_offset, "error flushing trace file on close");
    }
    return !_error.has_value();
}

TraceReader::TraceReader(const std::string &path)
{
    _file = std::fopen(path.c_str(), "rb");
    if (!_file) {
        fail(0, format("cannot open '%s' for reading", path.c_str()));
        return;
    }
    if (std::fseek(_file, 0, SEEK_END) != 0) {
        fail(0, "cannot determine trace file size");
        return;
    }
    long end = std::ftell(_file);
    if (end < 0 || std::fseek(_file, 0, SEEK_SET) != 0) {
        fail(0, "cannot determine trace file size");
        return;
    }
    _fileSize = static_cast<std::uint64_t>(end);

    char magic[8] = {};
    if (std::fread(magic, 1, sizeof(magic), _file) != sizeof(magic)) {
        fail(0, "file too short for trace magic");
        return;
    }
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        fail(0, "bad trace magic (not a WC3DTRC2 trace)");
        return;
    }
    _pos = sizeof(kMagic);
}

TraceReader::~TraceReader()
{
    if (_file)
        std::fclose(_file);
}

void
TraceReader::fail(std::uint64_t offset, std::string reason)
{
    if (!_error)
        _error = TraceError{offset, std::move(reason)};
}

std::optional<Command>
TraceReader::next()
{
    if (_error || _atEnd || !_file)
        return std::nullopt;

    std::uint64_t record_start = _pos;
    int tag_int = std::fgetc(_file);
    if (tag_int == EOF) {
        _atEnd = true;
        return std::nullopt;
    }
    _pos += 1;
    auto tag = static_cast<std::uint8_t>(tag_int);
    if (tag > kMaxTag) {
        fail(record_start, format("unknown command tag %u", tag));
        return std::nullopt;
    }

    unsigned char lenb[4];
    if (std::fread(lenb, 1, sizeof(lenb), _file) != sizeof(lenb)) {
        fail(_pos, "truncated record header (payload length)");
        return std::nullopt;
    }
    std::uint32_t len = static_cast<std::uint32_t>(lenb[0]) |
                        (static_cast<std::uint32_t>(lenb[1]) << 8) |
                        (static_cast<std::uint32_t>(lenb[2]) << 16) |
                        (static_cast<std::uint32_t>(lenb[3]) << 24);
    std::uint64_t len_at = _pos;
    _pos += sizeof(lenb);
    // Bounding the payload by the bytes actually present caps every
    // allocation at the file size, so a corrupt ("lying") length can
    // never over-allocate.
    if (len > _fileSize - _pos) {
        fail(len_at,
             format("record length %u exceeds the %llu bytes left in "
                    "the file",
                    len,
                    static_cast<unsigned long long>(_fileSize - _pos)));
        return std::nullopt;
    }

    std::vector<unsigned char> payload(len);
    if (len > 0 &&
        std::fread(payload.data(), 1, len, _file) != len) {
        fail(_pos, "unexpected EOF inside record payload");
        return std::nullopt;
    }

    Cursor c{payload.data(), len, _pos, 0, std::nullopt};
    Command cmd = readCommand(c, tag);
    if (c.err) {
        _error = c.err;
        return std::nullopt;
    }
    if (c.pos != c.size) {
        fail(_pos + c.pos,
             format("%s record has %zu trailing payload bytes",
                    commandName(cmd), c.size - c.pos));
        return std::nullopt;
    }
    _pos += len;
    ++_count;
    return cmd;
}

std::uint64_t
playTrace(TraceReader &reader, Device &device)
{
    std::uint64_t count = 0;
    while (auto cmd = reader.next()) {
        device.submit(*cmd);
        ++count;
    }
    return count;
}

} // namespace wc3d::api
