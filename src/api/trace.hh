/**
 * @file
 * Binary API trace format: the GLInterceptor / PIX-player analogue.
 * A trace is the full command stream of a run — including resource
 * payloads — so it can be replayed bit-identically on a Device later
 * ("allowing to replay exactly the same input several times", [4]).
 *
 * Layout: 8-byte magic "WC3DTRC2", then a sequence of records, each a
 * 1-byte command tag, a 4-byte payload length, and the payload. All
 * integers are little-endian.
 *
 * Error model: neither side ever kills the process. The writer enters
 * a sticky error state on the first IO failure; the reader validates
 * every decoded field (enum ranges, size/count caps, record framing)
 * and reports the first problem as a TraceError carrying the byte
 * offset where it was detected. A clean end of file is not an error:
 * TraceReader::next() returns nullopt with atEnd() true and error()
 * empty. See DESIGN.md "Trace format & validation".
 */

#ifndef WC3D_API_TRACE_HH
#define WC3D_API_TRACE_HH

#include <cstdio>
#include <optional>
#include <string>

#include "api/commands.hh"

namespace wc3d::api {

class Device;

/** A structured trace IO/validation failure: where, and why. */
struct TraceError
{
    /** Byte offset into the trace file where the error was detected. */
    std::uint64_t offset = 0;
    /** Human-readable reason ("IndexType out of range: 7 > 1", ...). */
    std::string reason;

    /** "byte <offset>: <reason>" for diagnostics. */
    std::string describe() const;
};

/** @name Decoder hardening caps
 * Upper bounds the reader enforces before allocating or instantiating
 * anything; a corrupt or hostile trace is rejected with a TraceError
 * instead of over-allocating. Exposed for tests.
 */
/// @{
constexpr std::uint32_t kTraceMaxVertices = 1u << 28;
constexpr std::uint32_t kTraceMaxIndices = 1u << 28;
constexpr std::uint32_t kTraceMaxStringBytes = 1u << 24;
constexpr int kTraceMaxTextureSize = 8192;
constexpr int kTraceMaxStrideFloats = 256;
constexpr int kTraceMaxAniso = 64;
/// @}

/**
 * Streams commands to a trace file. IO failures (open, short write,
 * failed flush) put the writer into a sticky error state instead of
 * aborting; once failed, further writes are no-ops returning false.
 */
class TraceWriter
{
  public:
    /** Open @p path for writing; check ok() afterwards. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** @return true while no IO error has occurred. */
    bool ok() const { return !_error.has_value(); }

    /** First IO failure, if any. */
    const std::optional<TraceError> &error() const { return _error; }

    /** Append one command. @return false when in the error state. */
    bool write(const Command &cmd);

    /** Commands written so far. */
    std::uint64_t commandsWritten() const { return _count; }

    /** Bytes successfully written so far (header + records). */
    std::uint64_t bytesWritten() const { return _offset; }

    /**
     * Flush and close (also done by the destructor).
     * @return true when every write and the final flush succeeded.
     */
    bool close();

  private:
    void fail(std::uint64_t offset, std::string reason);

    std::FILE *_file = nullptr;
    std::uint64_t _offset = 0; ///< bytes successfully written
    std::uint64_t _count = 0;
    std::optional<TraceError> _error;
};

/**
 * Reads commands back from a trace file, validating every decoded
 * field. Any malformed input — bad magic, unknown tag, truncated or
 * oversized record, out-of-range enum byte, impossible size/count —
 * stops the stream with a structured error() rather than crashing or
 * returning a half-decoded command.
 */
class TraceReader
{
  public:
    /** Open @p path; check ok() (header validated) afterwards. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return true while the stream has produced no error. */
    bool ok() const { return !_error.has_value(); }

    /** First validation/IO failure, if any. */
    const std::optional<TraceError> &error() const { return _error; }

    /** @return true once the file ended cleanly on a record boundary. */
    bool atEnd() const { return _atEnd; }

    /** Commands successfully decoded so far. */
    std::uint64_t commandsRead() const { return _count; }

    /**
     * Read the next command. nullopt at clean end of file (atEnd())
     * or on the first malformed record (error()).
     */
    std::optional<Command> next();

  private:
    void fail(std::uint64_t offset, std::string reason);

    std::FILE *_file = nullptr;
    std::uint64_t _pos = 0;      ///< current byte offset in the file
    std::uint64_t _fileSize = 0;
    std::uint64_t _count = 0;
    bool _atEnd = false;
    std::optional<TraceError> _error;
};

/**
 * Replay a whole trace into @p device, stopping at end of file or on
 * the first malformed record (check reader.error() afterwards).
 * @return number of commands replayed.
 */
std::uint64_t playTrace(TraceReader &reader, Device &device);

} // namespace wc3d::api

#endif // WC3D_API_TRACE_HH
