/**
 * @file
 * Binary API trace format: the GLInterceptor / PIX-player analogue.
 * A trace is the full command stream of a run — including resource
 * payloads — so it can be replayed bit-identically on a Device later
 * ("allowing to replay exactly the same input several times", [4]).
 *
 * Layout: 8-byte magic "WC3DTRC1", then a sequence of records, each a
 * 1-byte command tag followed by a command-specific payload. All
 * integers are little-endian.
 */

#ifndef WC3D_API_TRACE_HH
#define WC3D_API_TRACE_HH

#include <cstdio>
#include <optional>
#include <string>

#include "api/commands.hh"

namespace wc3d::api {

class Device;

/** Streams commands to a trace file. */
class TraceWriter
{
  public:
    /** Open @p path for writing; fatal() on failure. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one command. */
    void write(const Command &cmd);

    /** Commands written so far. */
    std::uint64_t commandsWritten() const { return _count; }

    /** Flush and close (also done by the destructor). */
    void close();

  private:
    std::FILE *_file = nullptr;
    std::uint64_t _count = 0;
};

/** Reads commands back from a trace file. */
class TraceReader
{
  public:
    /** Open @p path; ok() reports whether the header validated. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return true when the file opened and the magic matched. */
    bool ok() const { return _ok; }

    /** Read the next command; nullopt at end of file or on error. */
    std::optional<Command> next();

  private:
    std::FILE *_file = nullptr;
    bool _ok = false;
};

/**
 * Replay a whole trace into @p device.
 * @return number of commands replayed.
 */
std::uint64_t playTrace(TraceReader &reader, Device &device);

} // namespace wc3d::api

#endif // WC3D_API_TRACE_HH
