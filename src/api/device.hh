/**
 * @file
 * The graphics device: an API state machine that owns resources,
 * validates and applies the command stream, feeds the API statistics
 * collector, optionally records a trace and forwards resolved draw
 * calls to a sink (the GPU simulator, or nothing for API-only runs).
 */

#ifndef WC3D_API_DEVICE_HH
#define WC3D_API_DEVICE_HH

#include <memory>
#include <unordered_map>

#include "api/apistats.hh"
#include "api/commands.hh"
#include "texture/texture.hh"

namespace wc3d::api {

class TraceWriter;

/** A draw call with every referenced resource resolved. */
struct DrawCall
{
    const VertexBufferData *vertices = nullptr;
    const IndexBufferData *indexData = nullptr;
    std::uint32_t firstIndex = 0;
    std::uint32_t indexCount = 0;
    geom::PrimitiveType topology = geom::PrimitiveType::TriangleList;
    const shader::Program *vertexProgram = nullptr;
    const shader::Program *fragmentProgram = nullptr;
    RenderState state;
    const tex::Texture2D *textures[shader::kMaxSamplers] = {};
};

/** Receiver of device output (implemented by the GPU simulator). */
class DrawSink
{
  public:
    virtual ~DrawSink() = default;

    /** Resource-creation notifications (upload traffic, memory binding). */
    virtual void vertexBufferCreated(std::uint32_t, const VertexBufferData &)
    {}
    virtual void indexBufferCreated(std::uint32_t, const IndexBufferData &)
    {}
    virtual void textureCreated(std::uint32_t, tex::Texture2D &) {}
    virtual void programCreated(std::uint32_t, const shader::Program &) {}

    /** Rendering commands. */
    virtual void clear(const ClearCmd &) {}
    virtual void draw(const DrawCall &) {}
    virtual void endFrame() {}
};

/** The device / context. */
class Device
{
  public:
    explicit Device(GraphicsApi apiKind = GraphicsApi::OpenGL);
    ~Device();

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    GraphicsApi apiKind() const { return _apiKind; }

    /** Attach the GPU (or other) sink; may be null. */
    void setSink(DrawSink *sink) { _sink = sink; }

    /** Attach a trace recorder; every submitted command is recorded. */
    void setRecorder(TraceWriter *recorder) { _recorder = recorder; }

    /** Apply one command (the single entry point for all callers). */
    void submit(const Command &cmd);

    /** @name Typed conveniences (build a Command and submit it) */
    /// @{
    std::uint32_t createVertexBuffer(VertexBufferData data);
    std::uint32_t createIndexBuffer(IndexBufferData data);
    std::uint32_t createTexture(const TextureSpec &spec);
    /** @return 0 and warns when @p source fails to assemble. */
    std::uint32_t createProgram(shader::ProgramKind kind,
                                const std::string &source);
    void bindProgram(shader::ProgramKind kind, std::uint32_t id);
    void bindTexture(std::uint32_t unit, std::uint32_t id,
                     const tex::SamplerState &sampler);
    void setDepthStencil(const frag::DepthStencilState &state);
    void setBlend(const frag::BlendState &state);
    void setCullMode(geom::CullMode mode);
    void setConstant(shader::ProgramKind kind, std::uint32_t index,
                     Vec4 value);
    void clear(const ClearCmd &cmd = ClearCmd{});
    void draw(std::uint32_t vertex_buffer, std::uint32_t index_buffer,
              std::uint32_t first_index, std::uint32_t index_count,
              geom::PrimitiveType topology);
    void endFrame();
    /// @}

    ApiStats &stats() { return _stats; }
    const ApiStats &stats() const { return _stats; }

    const RenderState &currentState() const { return _current; }

    /** @name Resource lookups (null when unknown) */
    /// @{
    const VertexBufferData *vertexBuffer(std::uint32_t id) const;
    const IndexBufferData *indexBuffer(std::uint32_t id) const;
    const tex::Texture2D *texture(std::uint32_t id) const;
    const shader::Program *program(std::uint32_t id) const;
    /// @}

  private:
    void apply(const Command &cmd);
    shader::Program *mutableProgram(std::uint32_t id);

    GraphicsApi _apiKind;
    DrawSink *_sink = nullptr;
    TraceWriter *_recorder = nullptr;
    ApiStats _stats;
    RenderState _current;
    std::uint32_t _nextId = 1;

    std::unordered_map<std::uint32_t, VertexBufferData> _vertexBuffers;
    std::unordered_map<std::uint32_t, IndexBufferData> _indexBuffers;
    std::unordered_map<std::uint32_t, std::unique_ptr<tex::Texture2D>>
        _textures;
    std::unordered_map<std::uint32_t, std::unique_ptr<shader::Program>>
        _programs;
};

} // namespace wc3d::api

#endif // WC3D_API_DEVICE_HH
