#include "api/state.hh"

#include "common/log.hh"

namespace wc3d::api {

const char *
graphicsApiName(GraphicsApi a)
{
    return a == GraphicsApi::OpenGL ? "OpenGL" : "Direct3D";
}

int
indexTypeBytes(IndexType t)
{
    return t == IndexType::U16 ? 2 : 4;
}

tex::Texture2D
TextureSpec::build(const std::string &name) const
{
    switch (kind) {
      case Kind::Checker:
        return tex::Texture2D::checkerboard(name, size, cell, colorA,
                                            colorB, format);
      case Kind::Noise:
        return tex::Texture2D::noise(name, size, seed, format,
                                     alphaNoise);
      case Kind::Gradient:
        return tex::Texture2D::gradient(name, size, colorA, colorB,
                                        format);
    }
    panic("unknown texture spec kind");
}

} // namespace wc3d::api
