#include "api/commands.hh"

namespace wc3d::api {

bool
isStateCall(const Command &cmd)
{
    return !std::holds_alternative<DrawCmd>(cmd) &&
           !std::holds_alternative<EndFrameCmd>(cmd);
}

namespace {

struct NameVisitor
{
    const char *operator()(const CreateVertexBufferCmd &) const
    { return "CreateVertexBuffer"; }
    const char *operator()(const CreateIndexBufferCmd &) const
    { return "CreateIndexBuffer"; }
    const char *operator()(const CreateTextureCmd &) const
    { return "CreateTexture"; }
    const char *operator()(const CreateProgramCmd &) const
    { return "CreateProgram"; }
    const char *operator()(const BindProgramCmd &) const
    { return "BindProgram"; }
    const char *operator()(const BindTextureCmd &) const
    { return "BindTexture"; }
    const char *operator()(const SetDepthStencilCmd &) const
    { return "SetDepthStencil"; }
    const char *operator()(const SetBlendCmd &) const
    { return "SetBlend"; }
    const char *operator()(const SetCullModeCmd &) const
    { return "SetCullMode"; }
    const char *operator()(const SetConstantCmd &) const
    { return "SetConstant"; }
    const char *operator()(const ClearCmd &) const { return "Clear"; }
    const char *operator()(const DrawCmd &) const { return "Draw"; }
    const char *operator()(const EndFrameCmd &) const
    { return "EndFrame"; }
};

} // namespace

const char *
commandName(const Command &cmd)
{
    return std::visit(NameVisitor{}, cmd);
}

} // namespace wc3d::api
