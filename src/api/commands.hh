/**
 * @file
 * The API command stream. Every interaction between a game (workload
 * generator or trace player) and the device is one of these commands;
 * the stream is what the tracer serializes and the paper's API-level
 * statistics (batches, indices, state calls per frame) are computed
 * over.
 */

#ifndef WC3D_API_COMMANDS_HH
#define WC3D_API_COMMANDS_HH

#include <variant>

#include "api/state.hh"
#include "geom/types.hh"

namespace wc3d::api {

/** Resource creation (the "setup" calls that spike in early frames). */
struct CreateVertexBufferCmd
{
    std::uint32_t id = 0;
    VertexBufferData data;
};

struct CreateIndexBufferCmd
{
    std::uint32_t id = 0;
    IndexBufferData data;
};

struct CreateTextureCmd
{
    std::uint32_t id = 0;
    TextureSpec spec;
};

struct CreateProgramCmd
{
    std::uint32_t id = 0;
    shader::ProgramKind kind = shader::ProgramKind::Vertex;
    std::string source; ///< shader assembly text
};

/** State-change calls (the paper's Figure 3 quantity). */
struct BindProgramCmd
{
    shader::ProgramKind kind = shader::ProgramKind::Vertex;
    std::uint32_t id = 0; ///< 0 unbinds
};

struct BindTextureCmd
{
    std::uint32_t unit = 0;
    std::uint32_t id = 0; ///< 0 unbinds
    tex::SamplerState sampler;
};

struct SetDepthStencilCmd
{
    frag::DepthStencilState state;
};

struct SetBlendCmd
{
    frag::BlendState state;
};

struct SetCullModeCmd
{
    geom::CullMode mode = geom::CullMode::Back;
};

struct SetConstantCmd
{
    shader::ProgramKind kind = shader::ProgramKind::Vertex;
    std::uint32_t index = 0;
    Vec4 value;
};

/** Framebuffer clear. */
struct ClearCmd
{
    bool color = true;
    bool depth = true;
    bool stencil = true;
    std::uint32_t colorValue = 0xff000000; ///< packed RGBA8
    float depthValue = 1.0f;
    std::uint8_t stencilValue = 0;
};

/** A draw batch: "the different vertex input streams which are
 *  processed down through the rendering pipeline" (Figure 1). */
struct DrawCmd
{
    std::uint32_t vertexBuffer = 0;
    std::uint32_t indexBuffer = 0;
    std::uint32_t firstIndex = 0;
    std::uint32_t indexCount = 0;
    geom::PrimitiveType topology = geom::PrimitiveType::TriangleList;
};

/** Frame boundary (present/swap). */
struct EndFrameCmd
{
};

using Command =
    std::variant<CreateVertexBufferCmd, CreateIndexBufferCmd,
                 CreateTextureCmd, CreateProgramCmd, BindProgramCmd,
                 BindTextureCmd, SetDepthStencilCmd, SetBlendCmd,
                 SetCullModeCmd, SetConstantCmd, ClearCmd, DrawCmd,
                 EndFrameCmd>;

/** @return true for commands that count as API state calls (everything
 *  that is not a draw or a frame boundary). */
bool isStateCall(const Command &cmd);

/** Short mnemonic for logging/inspection. */
const char *commandName(const Command &cmd);

} // namespace wc3d::api

#endif // WC3D_API_COMMANDS_HH
