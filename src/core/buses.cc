#include "core/buses.hh"

#include "common/strutil.hh"

namespace wc3d::core {

const std::vector<BusSpec> &
busCatalog()
{
    static const std::vector<BusSpec> kBuses = {
        {"AGP 4X", "32 bits", "66x4 MHz", 1.056},
        {"AGP 8X", "32 bits", "66x8 MHz", 2.112},
        {"PCI Express x4", "1 bit", "2.5 Gbaud x 4", 1.0},
        {"PCI Express x8", "1 bit", "2.5 Gbaud x 8", 2.0},
        {"PCI Express x16", "1 bit", "2.5 Gbaud x 16", 4.0},
    };
    return kBuses;
}

stats::Table
tableBuses()
{
    stats::Table t({"Bus", "Width", "Bus Speed", "Bus BW"});
    for (const auto &b : busCatalog()) {
        t.addRow({b.name, b.width, b.speed,
                  format("%.3f GB/s", b.bandwidthGBs)});
    }
    return t;
}

double
busHeadroom(const BusSpec &bus, double index_bw_bytes_s)
{
    if (index_bw_bytes_s <= 0.0)
        return 0.0;
    return bus.bandwidthGBs * 1e9 / index_bw_bytes_s;
}

} // namespace wc3d::core
