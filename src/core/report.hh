/**
 * @file
 * Whole-paper characterization report: runs the workloads and renders
 * every reproduced table in order. Used by the timedemo_report example
 * and handy for regenerating EXPERIMENTS.md data in one shot.
 */

#ifndef WC3D_CORE_REPORT_HH
#define WC3D_CORE_REPORT_HH

#include <string>

namespace wc3d::core {

/** Options for a full report. */
struct ReportOptions
{
    int apiFrames = 0;   ///< 0: defaultApiFrames()
    int microFrames = 0; ///< 0: defaultMicroFrames()
    bool includeMicroarch = true;
};

/** Render the full characterization (all tables) as text. */
std::string fullReport(const ReportOptions &options = ReportOptions{});

/** Render the characterization of a single timedemo. */
std::string gameReport(const std::string &id,
                       const ReportOptions &options = ReportOptions{});

} // namespace wc3d::core

#endif // WC3D_CORE_REPORT_HH
