#include "core/report.hh"

#include "common/strutil.hh"
#include "core/apilevel.hh"
#include "core/buses.hh"
#include "core/microarch.hh"
#include "gpu/perfmodel.hh"
#include "workloads/games.hh"

namespace wc3d::core {

namespace {

std::string
section(const char *title, const stats::Table &table)
{
    return format("== %s ==\n", title) + table.toString() + "\n";
}

} // namespace

std::string
fullReport(const ReportOptions &options)
{
    int api_frames =
        options.apiFrames > 0 ? options.apiFrames : defaultApiFrames();
    int micro_frames = options.microFrames > 0 ? options.microFrames
                                               : defaultMicroFrames();

    std::string out;
    out += section("Table I: workload description", tableWorkloads());
    out += section("Table II: simulator configuration",
                   tableConfig(gpu::GpuConfig{}));

    auto api_runs = runAllGamesApi(api_frames);
    out += section("Table III: index traffic",
                   tableIndexTraffic(api_runs));
    out += section("Table IV: vertex shader instructions",
                   tableVertexShader(api_runs));
    out += section("Table V: primitive utilization",
                   tablePrimitives(api_runs));
    out += section("Table VI: system bus bandwidths", tableBuses());
    out += section("Table XII: fragment shader composition",
                   tableFragmentShader(api_runs));

    if (options.includeMicroarch) {
        auto micro = runSimulatedGames(micro_frames);
        out += section("Table VII: clipped/culled/traversed",
                       tableClipCull(micro));
        out += section("Table VIII: triangle size per stage",
                       tableTriangleSize(micro));
        out += section("Table IX: quad removal per stage",
                       tableQuadRemoval(micro));
        out += section("Table X: quad efficiency",
                       tableQuadEfficiency(micro));
        out += section("Table XI: overdraw per stage",
                       tableOverdraw(micro));
        out += section("Table XIII: bilinears per request",
                       tableBilinears(micro));
        out += section("Table XIV: cache hit rates",
                       tableCaches(micro, gpu::GpuConfig{}));
        out += section("Table XV: memory bandwidth",
                       tableMemoryBw(micro));
        out += section("Table XVI: traffic distribution",
                       tableTrafficDistribution(micro));
        out += section("Table XVII: bytes per vertex/fragment",
                       tableBytesPerItem(micro));
    }
    return out;
}

std::string
gameReport(const std::string &id, const ReportOptions &options)
{
    int api_frames =
        options.apiFrames > 0 ? options.apiFrames : defaultApiFrames();
    int micro_frames = options.microFrames > 0 ? options.microFrames
                                               : defaultMicroFrames();

    const auto &profile = workloads::gameProfile(id);
    std::string out =
        format("Characterization of %s (%s, %s engine)\n\n", id.c_str(),
               api::graphicsApiName(profile.apiKind),
               profile.engine.c_str());

    std::vector<ApiRun> api_runs = {runApiLevel(id, api_frames)};
    out += section("API: index traffic", tableIndexTraffic(api_runs));
    out += section("API: vertex shader", tableVertexShader(api_runs));
    out += section("API: primitives", tablePrimitives(api_runs));
    out += section("API: fragment shader",
                   tableFragmentShader(api_runs));

    bool simulated = false;
    for (const auto &sim_id : workloads::simulatedTimedemoIds())
        simulated |= sim_id == id;
    if (options.includeMicroarch && simulated) {
        std::vector<MicroRun> micro = {
            runMicroarch(id, micro_frames)};
        out += section("uArch: clip/cull", tableClipCull(micro));
        out += section("uArch: triangle size",
                       tableTriangleSize(micro));
        out += section("uArch: quad removal", tableQuadRemoval(micro));
        out += section("uArch: quad efficiency",
                       tableQuadEfficiency(micro));
        out += section("uArch: overdraw", tableOverdraw(micro));
        out += section("uArch: bilinears", tableBilinears(micro));
        out += section("uArch: caches",
                       tableCaches(micro, gpu::GpuConfig{}));
        out += section("uArch: memory BW", tableMemoryBw(micro));
        out += section("uArch: traffic distribution",
                       tableTrafficDistribution(micro));
        out += section("uArch: bytes per item",
                       tableBytesPerItem(micro));
        // Extension: throughput-bound cycle estimate from the Table II
        // rates (the paper reports no timing; see gpu/perfmodel.hh).
        gpu::PerfEstimate perf =
            gpu::estimatePerf(micro[0].counters, gpu::GpuConfig{});
        out += "== Extension: throughput-bound performance model ==\n";
        out += gpu::describePerf(perf, micro[0].frames);
    }
    return out;
}

} // namespace wc3d::core
