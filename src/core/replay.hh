/**
 * @file
 * Differential trace replay checking: the correctness tool backing the
 * paper's methodology claim that a recorded timedemo "replays exactly
 * the same input several times". A workload is run live (recording a
 * trace as it goes), the trace is replayed into a fresh Device + GPU
 * simulator, and every statistic both runs produce — the full ApiStats,
 * all PipelineCounters, the four cache models and both per-frame series
 * — is diffed bit for bit. Any divergence names the first counter that
 * differs; any trace IO failure surfaces its TraceError.
 *
 * Exposed as the `wc3d-verify` example binary and the Replay.* ctest
 * targets (see DESIGN.md "Trace format & validation").
 */

#ifndef WC3D_CORE_REPLAY_HH
#define WC3D_CORE_REPLAY_HH

#include <string>
#include <vector>

#include "core/runner.hh"

namespace wc3d::core {

/** Outcome of one record→replay→diff cycle. */
struct ReplayReport
{
    std::string id;
    int frames = 0;
    std::uint64_t commandsRecorded = 0;
    std::uint64_t commandsReplayed = 0;

    /** Trace IO/validation failure ("" when the trace round-tripped). */
    std::string traceError;

    /**
     * Counters that differ between the live and replayed run, in
     * pipeline order, formatted "name: live=X replay=Y". Empty when
     * the replay is bit-identical.
     */
    std::vector<std::string> divergences;

    /** Bit-identical replay with no trace errors. */
    bool ok() const { return traceError.empty() && divergences.empty(); }

    /** The first divergent counter (or the trace error), "" when ok. */
    std::string firstDivergence() const;
};

/**
 * Record timedemo @p id for @p frames frames while simulating it,
 * replay the trace through a fresh Device + simulator, and diff every
 * statistic. @p trace_path names the intermediate trace file; when
 * empty a file next to the run cache is used. The trace file is
 * removed afterwards unless @p keep_trace.
 */
ReplayReport replayAndDiff(const std::string &id, int frames,
                           int width = 320, int height = 240,
                           const std::string &trace_path = "",
                           bool keep_trace = false);

/** replayAndDiff over all twelve timedemos. */
std::vector<ReplayReport> replayAndDiffAll(int frames, int width = 320,
                                           int height = 240);

} // namespace wc3d::core

#endif // WC3D_CORE_REPLAY_HH
