#include "core/benchgate.hh"

#include "common/strutil.hh"

namespace wc3d::core {

namespace {

double
numberAt(const json::Value *obj, const char *key, double fallback = 0.0)
{
    const json::Value *v = obj ? obj->find(key) : nullptr;
    return v ? v->asDouble() : fallback;
}

} // namespace

GateResult
evalParallelSpeedupGate(const json::Value &doc, double min_speedup)
{
    auto fail = [](std::string msg) {
        return GateResult{GateOutcome::Fail, std::move(msg)};
    };
    auto skip = [](std::string msg) {
        return GateResult{GateOutcome::Skip, std::move(msg)};
    };

    const json::Value *speed = doc.find("speed_simulation");
    const json::Value *sweep = speed ? speed->find("sweep") : nullptr;
    if (!sweep || !sweep->isArray())
        return fail("speed_simulation.sweep missing "
                    "(parallel-speedup gate)");

    double s1 = 0.0;
    double s4 = 0.0;
    // host_threads across entries: identical (one host), absent
    // everywhere (legacy sweep -> document host fingerprint), or
    // mismatched (stitched from several hosts -> not comparable).
    int host_threads = 0;
    std::size_t entries = 0;
    std::size_t tagged = 0;
    bool mismatched = false;
    bool oversub = false;
    for (const json::Value &entry : sweep->items()) {
        ++entries;
        int threads = static_cast<int>(numberAt(&entry, "threads"));
        if (threads == 1) {
            s1 = numberAt(&entry, "seconds");
            oversub = oversub || sweepEntryOversubscribed(entry);
        }
        if (threads == 4) {
            s4 = numberAt(&entry, "seconds");
            oversub = oversub || sweepEntryOversubscribed(entry);
        }
        const json::Value *ht = entry.find("host_threads");
        if (ht) {
            int v = static_cast<int>(ht->asDouble());
            if (tagged > 0 && v != host_threads)
                mismatched = true;
            host_threads = v;
            ++tagged;
        }
    }
    bool any_host = tagged > 0;
    if (tagged > 0 && tagged < entries)
        mismatched = true; // some entries tagged, some not
    if (mismatched)
        return skip("parallel speedup gate: sweep entries were "
                    "measured on mismatched hosts (host_threads "
                    "disagree) — ratios are not comparable");
    if (!any_host) {
        // Sweeps recorded before per-entry host_threads: fall back to
        // the document-level host fingerprint.
        host_threads =
            static_cast<int>(numberAt(doc.find("host"), "threads"));
    }
    if (host_threads < 4)
        return skip(format(
            "parallel speedup gate: sweep host has %d hardware "
            "thread(s), need >= 4 for a meaningful 4-thread "
            "measurement",
            host_threads));
    if (oversub)
        return skip("parallel speedup gate: the 1- or 4-thread sweep "
                    "point was measured oversubscribed (threads > "
                    "host_threads) — the ratio times time-slicing, "
                    "not scaling");
    if (s1 <= 0.0 || s4 <= 0.0)
        return skip(format(
            "parallel speedup gate: sweep lacks a usable %s point "
            "(1t %.3fs, 4t %.3fs) — nothing to gate",
            s1 <= 0.0 ? "1-thread" : "4-thread", s1, s4));

    double speedup = s1 / s4;
    if (speedup >= min_speedup)
        return GateResult{
            GateOutcome::Pass,
            format("parallel speedup 4t vs 1t %.2fx (floor %.2fx)",
                   speedup, min_speedup)};
    return fail(format(
        "parallel speedup 4t vs 1t %.2fx below floor %.2fx", speedup,
        min_speedup));
}

bool
sweepEntryOversubscribed(const json::Value &entry)
{
    const json::Value *flag = entry.find("oversubscribed");
    if (flag && flag->asBool())
        return true;
    const json::Value *ht = entry.find("host_threads");
    if (!ht)
        return false;
    int threads = static_cast<int>(numberAt(&entry, "threads"));
    return threads > static_cast<int>(ht->asDouble());
}

GateResult
evalJitSpeedupGate(const json::Value &doc, double min_speedup)
{
    auto fail = [](std::string msg) {
        return GateResult{GateOutcome::Fail, std::move(msg)};
    };

    const json::Value *hot = doc.find("hotpath");
    const json::Value *interp = hot ? hot->find("interp") : nullptr;
    if (!interp)
        return fail("hotpath.interp missing (jit speedup gate)");

    const json::Value *avail = interp->find("jit_available");
    if (!avail || !avail->asBool())
        return GateResult{
            GateOutcome::Skip,
            "jit speedup gate: the measuring host cannot run the "
            "x86-64 shader JIT (interp.jit_available is false or "
            "absent) — nothing to gate"};

    double worst = 0.0;
    const char *worst_profile = nullptr;
    for (const char *profile : {"vertex", "fragment", "texture"}) {
        const json::Value *entry = interp->find(profile);
        if (!entry)
            return fail(format("hotpath.interp.%s missing "
                               "(jit speedup gate)",
                               profile));
        const json::Value *s = entry->find("speedup_vs_decoded");
        if (!s)
            return fail(format(
                "hotpath.interp.%s.speedup_vs_decoded missing even "
                "though jit_available is true — the jit measurement "
                "did not run",
                profile));
        double speedup = s->asDouble();
        if (!worst_profile || speedup < worst) {
            worst = speedup;
            worst_profile = profile;
        }
    }
    if (worst >= min_speedup)
        return GateResult{
            GateOutcome::Pass,
            format("jit speedup vs decoded: worst profile %s %.2fx "
                   "(floor %.2fx)",
                   worst_profile, worst, min_speedup)};
    return fail(format(
        "jit speedup vs decoded %.2fx (%s) below floor %.2fx",
        worst, worst_profile, min_speedup));
}

} // namespace wc3d::core
