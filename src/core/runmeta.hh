/**
 * @file
 * Run manifest and machine-readable metrics export.
 *
 * Every runner entry point (runApiLevel, runMicroarch and their
 * fan-out wrappers) reports its results to the process-global RunMeta
 * collector: per-run statistics land in a stats::Registry under
 * hierarchical names ("sim.<id>.indices", "api.<id>.batches",
 * "sim.<id>.series.<name>"), wall-clock per phase and disk-cache
 * hit/miss counts accumulate alongside. When WC3D_METRICS_OUT=<file>
 * is set, each completed run atomically rewrites that file with one
 * canonical JSON document: config (frames, threads, cache hits/misses,
 * git describe), phase wall-clocks, one record per run (full
 * PipelineCounters / ApiStats / cache models) and a complete dump of
 * the registry. BENCH_*.json consumers and CI trend tracking read this
 * artifact; tests/test_observability.cc validates its schema.
 */

#ifndef WC3D_CORE_RUNMETA_HH
#define WC3D_CORE_RUNMETA_HH

#include <mutex>
#include <string>
#include <vector>

#include "common/json.hh"
#include "core/runner.hh"
#include "stats/registry.hh"

namespace wc3d::core {

/** Process-global collector behind WC3D_METRICS_OUT. */
class RunMeta
{
  public:
    static RunMeta &global();

    /** Record a completed API-level run (replaces a same-id record). */
    void noteApiRun(const ApiRun &run, double seconds);

    /** Record a completed microarchitectural run. */
    void noteMicroRun(const MicroRun &run, double seconds,
                      bool from_cache);

    /** Accumulate @p seconds of wall clock under phase @p name. */
    void notePhase(const std::string &name, double seconds);

    /** Count one disk-cache lookup of runMicroarch. */
    void noteCacheLookup(bool hit);

    /** @name Registry snapshot (copies; safe against concurrent runs) */
    /// @{
    std::vector<std::string> counterNames() const;
    std::vector<std::string> distributionNames() const;
    std::uint64_t counterValue(const std::string &name) const;
    /// @}

    /** The full metrics document. */
    json::Value toJson() const;

    /**
     * Serialize to @p path (durable atomic write, pretty-printed).
     * Short writes and ENOSPC come back as structured errors via the
     * faultio-checked helper; an existing manifest is never truncated.
     */
    bool write(const std::string &path,
               std::string *error = nullptr) const;

    /**
     * Write to the WC3D_METRICS_OUT path when that knob is set.
     * @return true when a document was written.
     */
    bool writeIfRequested() const;

    /** Drop all recorded runs, phases and registry entries (tests). */
    void reset();

  private:
    RunMeta() = default;

    mutable std::mutex _mutex;
    stats::Registry _registry;
    std::vector<std::pair<std::string, json::Value>> _runs; // key -> record
    std::vector<std::string> _phaseOrder;
    std::vector<double> _phaseSeconds;
    std::vector<std::uint64_t> _phaseCalls;
    std::uint64_t _cacheHits = 0;
    std::uint64_t _cacheMisses = 0;
};

/** The WC3D_METRICS_OUT path ("" when unset). */
std::string metricsPath();

/** `git describe --always --dirty` of the cwd, or "unknown". */
std::string gitDescribe();

/**
 * The manifest `host` block: hostname, hardware threads and the
 * machine-shaping knobs (resolved WC3D_TILE_SIZE / WC3D_THREADS).
 * Shared by the metrics and serve manifests so the fleet store can
 * group runs by host.
 */
json::Value hostInfoJson();

/**
 * "hostname/NT" fingerprint of a manifest's `host` block (any schema
 * that embeds hostInfoJson()), or "unknown" for pre-v1.1 documents.
 */
std::string hostFingerprint(const json::Value &doc);

/**
 * Structural validation of a parsed metrics document: schema tag,
 * config/runs/registry sections, every registry counter numeric.
 */
bool validateMetrics(const json::Value &doc, std::string *error);

/** RAII wall-clock accumulator for one RunMeta phase. */
class PhaseTimer
{
  public:
    explicit PhaseTimer(std::string name);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    std::string _name;
    double _start;
};

} // namespace wc3d::core

#endif // WC3D_CORE_RUNMETA_HH
