#include "core/runmeta.hh"

#include <chrono>
#include <cstdio>
#include <thread>

#include <unistd.h>

#include "common/env.hh"
#include "common/log.hh"
#include "common/strutil.hh"
#include "common/threadpool.hh"
#include "raster/tilegrid.hh"
#include "shader/jit/jit.hh"
#include "stats/jsonio.hh"

namespace wc3d::core {

namespace {

constexpr const char *kSchema = "wc3d-metrics-v1";
/** Minor schema revision: 1 added the host block, 2 the jit block
 *  (older readers that only check the schema tag still accept the
 *  document). */
constexpr std::uint64_t kSchemaMinor = 2;

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

json::Value
cacheStatsToJson(const memsys::CacheStats &s)
{
    json::Value out = json::Value::object();
    out.set("accesses", json::Value::number(s.accesses));
    out.set("hits", json::Value::number(s.hits));
    out.set("misses", json::Value::number(s.misses));
    out.set("writebacks", json::Value::number(s.writebacks));
    return out;
}

/** Field list shared by the JSON record and the registry names. */
struct CounterField
{
    const char *name;
    std::uint64_t gpu::PipelineCounters::*member;
};

constexpr CounterField kCounterFields[] = {
    {"indices", &gpu::PipelineCounters::indices},
    {"vertexCacheHits", &gpu::PipelineCounters::vertexCacheHits},
    {"vertexCacheMisses", &gpu::PipelineCounters::vertexCacheMisses},
    {"trianglesAssembled", &gpu::PipelineCounters::trianglesAssembled},
    {"trianglesClipped", &gpu::PipelineCounters::trianglesClipped},
    {"trianglesCulled", &gpu::PipelineCounters::trianglesCulled},
    {"trianglesTraversed", &gpu::PipelineCounters::trianglesTraversed},
    {"rasterQuads", &gpu::PipelineCounters::rasterQuads},
    {"rasterFullQuads", &gpu::PipelineCounters::rasterFullQuads},
    {"rasterFragments", &gpu::PipelineCounters::rasterFragments},
    {"quadsRemovedHz", &gpu::PipelineCounters::quadsRemovedHz},
    {"quadsRemovedZStencil",
     &gpu::PipelineCounters::quadsRemovedZStencil},
    {"quadsRemovedAlpha", &gpu::PipelineCounters::quadsRemovedAlpha},
    {"quadsRemovedColorMask",
     &gpu::PipelineCounters::quadsRemovedColorMask},
    {"quadsBlended", &gpu::PipelineCounters::quadsBlended},
    {"zStencilQuads", &gpu::PipelineCounters::zStencilQuads},
    {"zStencilFullQuads", &gpu::PipelineCounters::zStencilFullQuads},
    {"zStencilFragments", &gpu::PipelineCounters::zStencilFragments},
    {"shadedQuads", &gpu::PipelineCounters::shadedQuads},
    {"shadedFragments", &gpu::PipelineCounters::shadedFragments},
    {"blendedFragments", &gpu::PipelineCounters::blendedFragments},
    {"vertexInstructions", &gpu::PipelineCounters::vertexInstructions},
    {"fragmentInstructions",
     &gpu::PipelineCounters::fragmentInstructions},
    {"fragmentTexInstructions",
     &gpu::PipelineCounters::fragmentTexInstructions},
    {"textureRequests", &gpu::PipelineCounters::textureRequests},
    {"bilinearSamples", &gpu::PipelineCounters::bilinearSamples},
};

json::Value
countersToJson(const gpu::PipelineCounters &c)
{
    json::Value out = json::Value::object();
    for (const auto &field : kCounterFields)
        out.set(field.name, json::Value::number(c.*field.member));
    json::Value read = json::Value::array();
    json::Value write = json::Value::array();
    for (int i = 0; i < memsys::kNumClients; ++i) {
        read.push(json::Value::number(c.traffic.readBytes[i]));
        write.push(json::Value::number(c.traffic.writeBytes[i]));
    }
    json::Value traffic = json::Value::object();
    traffic.set("readBytes", std::move(read));
    traffic.set("writeBytes", std::move(write));
    traffic.set("totalBytes", json::Value::number(c.traffic.total()));
    out.set("traffic", std::move(traffic));
    return out;
}

} // namespace

RunMeta &
RunMeta::global()
{
    static RunMeta *meta = new RunMeta(); // never destroyed: fan-out
                                          // threads may report late
    return *meta;
}

void
RunMeta::noteApiRun(const ApiRun &run, double seconds)
{
    const api::ApiStats &s = run.stats;

    json::Value record = json::Value::object();
    record.set("kind", json::Value::str("api"));
    record.set("id", json::Value::str(run.id));
    record.set("frames", json::Value::number(run.frames));
    record.set("seconds", json::Value::number(seconds));
    json::Value agg = json::Value::object();
    agg.set("batches", json::Value::number(s.batches()));
    agg.set("indices", json::Value::number(s.indices()));
    agg.set("indexBytes", json::Value::number(s.indexBytes()));
    agg.set("stateCalls", json::Value::number(s.stateCalls()));
    agg.set("primitives", json::Value::number(s.primitives()));
    agg.set("avgBatchesPerFrame",
            json::Value::number(s.avgBatchesPerFrame()));
    agg.set("avgVertexShaderInstructions",
            json::Value::number(s.avgVertexShaderInstructions()));
    agg.set("avgFragmentInstructions",
            json::Value::number(s.avgFragmentInstructions()));
    agg.set("aluToTexRatio", json::Value::number(s.aluToTexRatio()));
    record.set("api", std::move(agg));
    record.set("series", stats::toJson(s.series()));

    std::lock_guard<std::mutex> lock(_mutex);
    std::string prefix = "api." + run.id + ".";
    auto put = [&](const char *name, std::uint64_t v) {
        stats::Counter &c = _registry.counter(prefix + name);
        c.reset();
        c.inc(v);
    };
    put("frames", s.frames());
    put("batches", s.batches());
    put("indices", s.indices());
    put("indexBytes", s.indexBytes());
    put("stateCalls", s.stateCalls());
    put("primitives", s.primitives());
    for (const auto &name : s.series().names()) {
        stats::Distribution &d =
            _registry.distribution(prefix + "series." + name);
        d.reset();
        d.merge(s.series().summary(name));
    }

    std::string key = "api:" + run.id;
    for (auto &existing : _runs) {
        if (existing.first == key) {
            existing.second = std::move(record);
            return;
        }
    }
    _runs.emplace_back(key, std::move(record));
}

void
RunMeta::noteMicroRun(const MicroRun &run, double seconds,
                      bool from_cache)
{
    json::Value record = json::Value::object();
    record.set("kind", json::Value::str("micro"));
    record.set("id", json::Value::str(run.id));
    record.set("frames", json::Value::number(run.frames));
    record.set("width", json::Value::number(run.width));
    record.set("height", json::Value::number(run.height));
    record.set("seconds", json::Value::number(seconds));
    record.set("fromCache", json::Value::boolean(from_cache));
    record.set("counters", countersToJson(run.counters));
    json::Value caches = json::Value::object();
    caches.set("z", cacheStatsToJson(run.zCache));
    caches.set("color", cacheStatsToJson(run.colorCache));
    caches.set("texL0", cacheStatsToJson(run.texL0));
    caches.set("texL1", cacheStatsToJson(run.texL1));
    record.set("caches", std::move(caches));
    record.set("series", stats::toJson(run.series));

    std::lock_guard<std::mutex> lock(_mutex);
    std::string prefix = "sim." + run.id + ".";
    auto put = [&](const std::string &name, std::uint64_t v) {
        stats::Counter &c = _registry.counter(prefix + name);
        c.reset();
        c.inc(v);
    };
    for (const auto &field : kCounterFields)
        put(field.name, run.counters.*field.member);
    put("traffic.readBytes", run.counters.traffic.totalRead());
    put("traffic.writeBytes", run.counters.traffic.totalWrite());
    const std::pair<const char *, const memsys::CacheStats *> caches_kv[] =
        {{"cache.z", &run.zCache},
         {"cache.color", &run.colorCache},
         {"cache.texL0", &run.texL0},
         {"cache.texL1", &run.texL1}};
    for (const auto &kv : caches_kv) {
        put(std::string(kv.first) + ".accesses", kv.second->accesses);
        put(std::string(kv.first) + ".hits", kv.second->hits);
        put(std::string(kv.first) + ".misses", kv.second->misses);
        put(std::string(kv.first) + ".writebacks",
            kv.second->writebacks);
    }
    for (const auto &name : run.series.names()) {
        stats::Distribution &d =
            _registry.distribution(prefix + "series." + name);
        d.reset();
        d.merge(run.series.summary(name));
    }

    std::string key = format("micro:%s:%dx%d:f%d", run.id.c_str(),
                             run.width, run.height, run.frames);
    for (auto &existing : _runs) {
        if (existing.first == key) {
            existing.second = std::move(record);
            return;
        }
    }
    _runs.emplace_back(key, std::move(record));
}

void
RunMeta::notePhase(const std::string &name, double seconds)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (std::size_t i = 0; i < _phaseOrder.size(); ++i) {
        if (_phaseOrder[i] == name) {
            _phaseSeconds[i] += seconds;
            ++_phaseCalls[i];
            return;
        }
    }
    _phaseOrder.push_back(name);
    _phaseSeconds.push_back(seconds);
    _phaseCalls.push_back(1);
}

void
RunMeta::noteCacheLookup(bool hit)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (hit)
        ++_cacheHits;
    else
        ++_cacheMisses;
}

std::vector<std::string>
RunMeta::counterNames() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _registry.counterNames();
}

std::vector<std::string>
RunMeta::distributionNames() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _registry.distributionNames();
}

std::uint64_t
RunMeta::counterValue(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _registry.counterValue(name);
}

json::Value
RunMeta::toJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);

    json::Value config = json::Value::object();
    config.set("threads",
               json::Value::number(ThreadPool::global().threads()));
    config.set("configuredThreads",
               json::Value::number(ThreadPool::configuredThreads()));
    config.set("hardwareConcurrency",
               json::Value::number(static_cast<std::uint64_t>(
                   std::thread::hardware_concurrency())));
    config.set("microFrames",
               json::Value::number(defaultMicroFrames()));
    config.set("apiFrames", json::Value::number(defaultApiFrames()));
    json::Value cache = json::Value::object();
    cache.set("hits", json::Value::number(_cacheHits));
    cache.set("misses", json::Value::number(_cacheMisses));
    config.set("runCache", std::move(cache));
    config.set("git", json::Value::str(gitDescribe()));

    json::Value phases = json::Value::array();
    for (std::size_t i = 0; i < _phaseOrder.size(); ++i) {
        json::Value phase = json::Value::object();
        phase.set("name", json::Value::str(_phaseOrder[i]));
        phase.set("seconds", json::Value::number(_phaseSeconds[i]));
        phase.set("calls", json::Value::number(_phaseCalls[i]));
        phases.push(std::move(phase));
    }

    json::Value runs = json::Value::array();
    for (const auto &kv : _runs)
        runs.push(kv.second);

    // Shader JIT compile-time stats: how many programs went native,
    // what the one-time translation cost was, and whether any fell
    // back to the decoded interpreter (published in the CI artifact).
    shader::jit::Stats js = shader::jit::stats();
    json::Value jit = json::Value::object();
    jit.set("available", json::Value::boolean(shader::jit::available()));
    jit.set("enabled", json::Value::boolean(shader::jit::enabled()));
    jit.set("programsCompiled", json::Value::number(js.programsCompiled));
    jit.set("compileSeconds", json::Value::number(js.compileSeconds));
    jit.set("fallbacks", json::Value::number(js.fallbacks));
    jit.set("codeBytes", json::Value::number(js.codeBytes));

    json::Value doc = json::Value::object();
    doc.set("schema", json::Value::str(kSchema));
    doc.set("schemaMinor", json::Value::number(kSchemaMinor));
    doc.set("host", hostInfoJson());
    doc.set("jit", std::move(jit));
    doc.set("config", std::move(config));
    doc.set("phases", std::move(phases));
    doc.set("runs", std::move(runs));
    doc.set("registry", stats::toJson(_registry));
    return doc;
}

bool
RunMeta::write(const std::string &path, std::string *error) const
{
    return json::writeFileAtomic(path, toJson().serialize(1) + "\n",
                                 error);
}

bool
RunMeta::writeIfRequested() const
{
    std::string path = metricsPath();
    if (path.empty())
        return false;
    std::string error;
    if (!write(path, &error)) {
        warn("metrics export failed: %s", error.c_str());
        return false;
    }
    return true;
}

void
RunMeta::reset()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _registry = stats::Registry();
    _runs.clear();
    _phaseOrder.clear();
    _phaseSeconds.clear();
    _phaseCalls.clear();
    _cacheHits = 0;
    _cacheMisses = 0;
}

std::string
metricsPath()
{
    return envString("WC3D_METRICS_OUT", "");
}

json::Value
hostInfoJson()
{
    char name[256] = {};
    if (::gethostname(name, sizeof(name) - 1) != 0)
        std::snprintf(name, sizeof(name), "unknown");
    json::Value host = json::Value::object();
    host.set("hostname", json::Value::str(name));
    host.set("hardwareThreads",
             json::Value::number(static_cast<std::uint64_t>(
                 std::thread::hardware_concurrency())));
    host.set("tileSize",
             json::Value::number(raster::resolveTileSize(0)));
    host.set("threads",
             json::Value::number(ThreadPool::configuredThreads()));
    return host;
}

std::string
hostFingerprint(const json::Value &doc)
{
    const json::Value *host = doc.find("host");
    if (!host || !host->isObject())
        return "unknown";
    const json::Value *name = host->find("hostname");
    const json::Value *hw = host->find("hardwareThreads");
    if (!name || !name->isString() || name->asString().empty())
        return "unknown";
    return format("%s/%llu", name->asString().c_str(),
                  static_cast<unsigned long long>(
                      hw && hw->isNumber() ? hw->asU64() : 0));
}

std::string
gitDescribe()
{
    static const std::string kDescribe = [] {
        std::string out = "unknown";
        std::FILE *p =
            ::popen("git describe --always --dirty 2>/dev/null", "r");
        if (!p)
            return out;
        char buf[256];
        std::string raw;
        while (std::fgets(buf, sizeof(buf), p))
            raw += buf;
        int status = ::pclose(p);
        std::string described = trim(raw);
        if (status == 0 && !described.empty())
            out = described;
        return out;
    }();
    return kDescribe;
}

bool
validateMetrics(const json::Value &doc, std::string *error)
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = "metrics: " + why;
        return false;
    };

    if (!doc.isObject())
        return fail("document is not an object");
    const json::Value *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != kSchema) {
        return fail(format("missing or wrong schema tag (want '%s')",
                           kSchema));
    }
    // schemaMinor is optional: minor 0 documents predate the host
    // block, minor >= 1 documents must carry one. Both validate.
    const json::Value *minor = doc.find("schemaMinor");
    std::uint64_t minor_rev = 0;
    if (minor) {
        if (!minor->isNumber())
            return fail("schemaMinor is not numeric");
        minor_rev = minor->asU64();
    }
    const json::Value *host = doc.find("host");
    if (minor_rev >= 1 && (!host || !host->isObject()))
        return fail("schemaMinor >= 1 but host block missing");
    if (host) {
        if (!host->isObject())
            return fail("host is not an object");
        const json::Value *hostname = host->find("hostname");
        const json::Value *hw = host->find("hardwareThreads");
        if (!hostname || !hostname->isString() ||
            hostname->asString().empty())
            return fail("host.hostname missing");
        if (!hw || !hw->isNumber())
            return fail("host.hardwareThreads missing");
    }
    // jit block is optional (minor < 2 documents predate it); when
    // present it must carry the compile counters.
    const json::Value *jit = doc.find("jit");
    if (jit) {
        if (!jit->isObject())
            return fail("jit is not an object");
        const json::Value *compiled = jit->find("programsCompiled");
        const json::Value *fallbacks = jit->find("fallbacks");
        if (!compiled || !compiled->isNumber())
            return fail("jit.programsCompiled missing");
        if (!fallbacks || !fallbacks->isNumber())
            return fail("jit.fallbacks missing");
    }
    const json::Value *config = doc.find("config");
    if (!config || !config->isObject())
        return fail("missing config object");
    const json::Value *threads = config->find("threads");
    if (!threads || !threads->isNumber())
        return fail("config.threads missing");
    const json::Value *git = config->find("git");
    if (!git || !git->isString() || git->asString().empty())
        return fail("config.git missing");
    const json::Value *runs = doc.find("runs");
    if (!runs || !runs->isArray())
        return fail("missing runs array");
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const json::Value &run = runs->at(i);
        const json::Value *kind = run.find("kind");
        const json::Value *id = run.find("id");
        if (!run.isObject() || !kind || !kind->isString() || !id ||
            !id->isString()) {
            return fail(format("run %zu lacks kind/id", i));
        }
        if (kind->asString() != "api" && kind->asString() != "micro")
            return fail(format("run %zu: unknown kind '%s'", i,
                               kind->asString().c_str()));
        if (kind->asString() == "micro") {
            const json::Value *counters = run.find("counters");
            if (!counters || !counters->isObject())
                return fail(format("micro run %zu lacks counters", i));
        }
    }
    const json::Value *registry = doc.find("registry");
    if (!registry || !registry->isObject())
        return fail("missing registry object");
    const json::Value *counters = registry->find("counters");
    const json::Value *dists = registry->find("distributions");
    if (!counters || !counters->isObject())
        return fail("registry.counters missing");
    if (!dists || !dists->isObject())
        return fail("registry.distributions missing");
    for (const auto &member : counters->members()) {
        if (!member.second.isNumber())
            return fail(format("registry counter '%s' is not numeric",
                               member.first.c_str()));
    }
    for (const auto &member : dists->members()) {
        if (!member.second.isObject() ||
            !member.second.find("mean") ||
            !member.second.find("count")) {
            return fail(format(
                "registry distribution '%s' lacks count/mean",
                member.first.c_str()));
        }
    }
    return true;
}

PhaseTimer::PhaseTimer(std::string name)
    : _name(std::move(name)), _start(nowSeconds())
{
}

PhaseTimer::~PhaseTimer()
{
    RunMeta::global().notePhase(_name, nowSeconds() - _start);
}

} // namespace wc3d::core
