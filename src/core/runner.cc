#include "core/runner.hh"

#include <cctype>
#include <cstdio>
#include <map>
#include <unistd.h>

#include <chrono>

#include "common/env.hh"
#include "common/fs.hh"
#include "common/log.hh"
#include "common/prof.hh"
#include "common/strutil.hh"
#include "common/threadpool.hh"
#include "core/runmeta.hh"
#include "workloads/games.hh"

namespace wc3d::core {

namespace {

/** Stable Chrome-trace pid of a timedemo (0 = the tool itself). */
int
tracePid(const std::string &id)
{
    auto ids = workloads::allTimedemoIds();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == id)
            return static_cast<int>(i) + 1;
    }
    return 0;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Bump when the simulator or workloads change behaviour. */
constexpr int kCacheSchema = 5;

/** Trailing marker proving a cache file was written out completely. */
constexpr const char *kEndMarker = "#end";

std::string
sanitize(const std::string &id)
{
    std::string out = id;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return out;
}

void
put(std::string &out, const char *key, std::uint64_t v)
{
    out += format("%s=%llu\n", key, static_cast<unsigned long long>(v));
}

void
putCache(std::string &out, const char *prefix,
         const memsys::CacheStats &s)
{
    out += format("%s.accesses=%llu\n%s.hits=%llu\n%s.misses=%llu\n"
                  "%s.writebacks=%llu\n",
                  prefix, static_cast<unsigned long long>(s.accesses),
                  prefix, static_cast<unsigned long long>(s.hits),
                  prefix, static_cast<unsigned long long>(s.misses),
                  prefix,
                  static_cast<unsigned long long>(s.writebacks));
}

} // namespace

std::uint64_t
MicroSpec::cacheFingerprint() const
{
    // Canonical text over the statistic-affecting knobs, hashed with
    // FNV-1a. The default shape maps to the empty string -> 0 so
    // legacy cache filenames (and their contents) stay valid.
    const gpu::GpuConfig def;
    std::string canon;
    auto knob = [&canon](const char *key, long long v, long long dflt) {
        if (v != dflt)
            canon += format("%s=%lld;", key, v);
    };
    knob("fb", frameBegin, 0);
    knob("vc", config.vertexCacheEntries, def.vertexCacheEntries);
    knob("hz", config.hzEnabled, def.hzEnabled);
    knob("hzmm", config.hzMinMax, def.hzMinMax);
    knob("cb", config.commandBytes, def.commandBytes);
    auto surface = [&knob](const std::string &key,
                           const frag::SurfaceCacheConfig &c,
                           const frag::SurfaceCacheConfig &d) {
        knob((key + ".w").c_str(), c.ways, d.ways);
        knob((key + ".s").c_str(), c.sets, d.sets);
        knob((key + ".b").c_str(), c.lineBytes, d.lineBytes);
    };
    surface("zc", config.zCache, def.zCache);
    surface("cc", config.colorCache, def.colorCache);
    const tex::TexCacheConfig &tc = config.textureCache;
    const tex::TexCacheConfig &td = def.textureCache;
    knob("t0.w", tc.l0Ways, td.l0Ways);
    knob("t0.s", tc.l0Sets, td.l0Sets);
    knob("t0.b", tc.l0Line, td.l0Line);
    knob("t1.w", tc.l1Ways, td.l1Ways);
    knob("t1.s", tc.l1Sets, td.l1Sets);
    knob("t1.b", tc.l1Line, td.l1Line);
    if (canon.empty())
        return 0;
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : canon) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h ? h : 1; // 0 is reserved for the default shape
}

int
defaultMicroFrames()
{
    return envInt("WC3D_FRAMES", 4);
}

int
defaultApiFrames()
{
    return envInt("WC3D_API_FRAMES", 300);
}

ApiRun
runApiLevel(const std::string &id, int frames)
{
    prof::ScopedProcess process(tracePid(id), id);
    WC3D_PROF_SCOPE("run.api", id);
    auto start = std::chrono::steady_clock::now();

    ApiRun run;
    run.id = id;
    run.frames = frames;
    api::Device device(workloads::gameProfile(id).apiKind);
    auto demo = workloads::makeTimedemo(id);
    demo->run(device, frames);
    run.stats = device.stats();

    RunMeta::global().noteApiRun(run, secondsSince(start));
    RunMeta::global().writeIfRequested();
    return run;
}

std::string
cachePath(const std::string &id, int frames, int width, int height)
{
    MicroSpec spec;
    spec.id = id;
    spec.frames = frames;
    spec.config.width = width;
    spec.config.height = height;
    return cachePath(spec);
}

std::string
cachePath(const MicroSpec &spec)
{
    std::string dir = envString("WC3D_CACHE_DIR", ".wc3d-cache");
    // The legacy (WC3D_TILED=0) back-end orders framebuffer writebacks
    // differently, so its traffic bytes may legitimately differ from
    // the tiled default; keep the two result sets apart. Tile size and
    // thread count do NOT key the cache: results are bit-identical
    // across both by construction.
    const char *backend = envInt("WC3D_TILED", 1) != 0 ? "" : "_legacy";
    // Non-default shapes (frame window, cache geometry, HZ mode...)
    // get a fingerprint suffix; the default keeps the legacy filename.
    std::uint64_t fp = spec.cacheFingerprint();
    std::string suffix =
        fp ? format("_s%016llx", static_cast<unsigned long long>(fp))
           : std::string();
    return format("%s/%s_f%d_%dx%d%s%s_v%d.txt", dir.c_str(),
                  sanitize(spec.id).c_str(), spec.frames,
                  spec.config.width, spec.config.height, backend,
                  suffix.c_str(), kCacheSchema);
}

std::string
encodeMicroRun(const MicroRun &run)
{
    std::string out = "wc3d-microrun-v1\n";
    out += format("id=%s\n", run.id.c_str());
    put(out, "frames", static_cast<std::uint64_t>(run.frames));
    put(out, "width", static_cast<std::uint64_t>(run.width));
    put(out, "height", static_cast<std::uint64_t>(run.height));

    const gpu::PipelineCounters &c = run.counters;
    put(out, "indices", c.indices);
    put(out, "vcacheHits", c.vertexCacheHits);
    put(out, "vcacheMisses", c.vertexCacheMisses);
    put(out, "triAssembled", c.trianglesAssembled);
    put(out, "triClipped", c.trianglesClipped);
    put(out, "triCulled", c.trianglesCulled);
    put(out, "triTraversed", c.trianglesTraversed);
    put(out, "rasterQuads", c.rasterQuads);
    put(out, "rasterFullQuads", c.rasterFullQuads);
    put(out, "rasterFragments", c.rasterFragments);
    put(out, "quadsHz", c.quadsRemovedHz);
    put(out, "quadsZst", c.quadsRemovedZStencil);
    put(out, "quadsAlpha", c.quadsRemovedAlpha);
    put(out, "quadsMask", c.quadsRemovedColorMask);
    put(out, "quadsBlend", c.quadsBlended);
    put(out, "zstQuads", c.zStencilQuads);
    put(out, "zstFullQuads", c.zStencilFullQuads);
    put(out, "zstFragments", c.zStencilFragments);
    put(out, "shadedQuads", c.shadedQuads);
    put(out, "shadedFragments", c.shadedFragments);
    put(out, "blendedFragments", c.blendedFragments);
    put(out, "vsInstr", c.vertexInstructions);
    put(out, "fsInstr", c.fragmentInstructions);
    put(out, "fsTexInstr", c.fragmentTexInstructions);
    put(out, "texRequests", c.textureRequests);
    put(out, "bilinears", c.bilinearSamples);
    for (int i = 0; i < memsys::kNumClients; ++i) {
        out += format("read%d=%llu\nwrite%d=%llu\n", i,
                      static_cast<unsigned long long>(
                          c.traffic.readBytes[i]),
                      i,
                      static_cast<unsigned long long>(
                          c.traffic.writeBytes[i]));
    }
    putCache(out, "zc", run.zCache);
    putCache(out, "cc", run.colorCache);
    putCache(out, "t0", run.texL0);
    putCache(out, "t1", run.texL1);
    out += "series-csv:\n";
    out += run.series.toCsv();
    out += kEndMarker;
    out += '\n';
    return out;
}

bool
saveMicroRun(const MicroRun &run, const std::string &path)
{
    std::string out = encodeMicroRun(run);

    // Durable temp-write + fsync + rename through the faultio shim so
    // concurrent readers never see a torn file and a short write or
    // ENOSPC can never rename a partial temp file into the cache. The
    // pid-suffixed temp keeps simultaneous writers (parallel fan-out,
    // several processes sharing one cache dir) off each other's temp
    // files; whoever renames last wins with identical content.
    std::string error;
    if (!atomicWriteFile(path, out, &error)) {
        warn("run cache write failed: %s", error.c_str());
        return false;
    }
    return true;
}

bool
loadMicroRun(MicroRun &run, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    std::fclose(f);
    return decodeMicroRun(run, content);
}

bool
decodeMicroRun(MicroRun &run, const std::string &content)
{
    auto lines = split(content, '\n');
    if (lines.empty() || lines[0] != "wc3d-microrun-v1")
        return false;

    // Reject truncated files: a complete save ends with the marker.
    bool complete = false;
    for (auto it = lines.rbegin(); it != lines.rend(); ++it) {
        if (trim(*it).empty())
            continue;
        complete = *it == kEndMarker;
        break;
    }
    if (!complete)
        return false;

    std::map<std::string, std::string> kv;
    std::size_t series_start = lines.size();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i] == "series-csv:") {
            series_start = i + 1;
            break;
        }
        auto eq = lines[i].find('=');
        if (eq != std::string::npos)
            kv[lines[i].substr(0, eq)] = lines[i].substr(eq + 1);
    }

    auto get = [&kv](const char *key) -> std::uint64_t {
        auto it = kv.find(key);
        return it != kv.end() ? std::strtoull(it->second.c_str(),
                                              nullptr, 10)
                              : 0;
    };

    run.id = kv.count("id") ? kv["id"] : "";
    run.frames = static_cast<int>(get("frames"));
    run.width = static_cast<int>(get("width"));
    run.height = static_cast<int>(get("height"));

    gpu::PipelineCounters &c = run.counters;
    c.indices = get("indices");
    c.vertexCacheHits = get("vcacheHits");
    c.vertexCacheMisses = get("vcacheMisses");
    c.trianglesAssembled = get("triAssembled");
    c.trianglesClipped = get("triClipped");
    c.trianglesCulled = get("triCulled");
    c.trianglesTraversed = get("triTraversed");
    c.rasterQuads = get("rasterQuads");
    c.rasterFullQuads = get("rasterFullQuads");
    c.rasterFragments = get("rasterFragments");
    c.quadsRemovedHz = get("quadsHz");
    c.quadsRemovedZStencil = get("quadsZst");
    c.quadsRemovedAlpha = get("quadsAlpha");
    c.quadsRemovedColorMask = get("quadsMask");
    c.quadsBlended = get("quadsBlend");
    c.zStencilQuads = get("zstQuads");
    c.zStencilFullQuads = get("zstFullQuads");
    c.zStencilFragments = get("zstFragments");
    c.shadedQuads = get("shadedQuads");
    c.shadedFragments = get("shadedFragments");
    c.blendedFragments = get("blendedFragments");
    c.vertexInstructions = get("vsInstr");
    c.fragmentInstructions = get("fsInstr");
    c.fragmentTexInstructions = get("fsTexInstr");
    c.textureRequests = get("texRequests");
    c.bilinearSamples = get("bilinears");
    for (int i = 0; i < memsys::kNumClients; ++i) {
        c.traffic.readBytes[i] = get(format("read%d", i).c_str());
        c.traffic.writeBytes[i] = get(format("write%d", i).c_str());
    }
    auto get_cache = [&](const char *prefix, memsys::CacheStats &s) {
        s.accesses = get(format("%s.accesses", prefix).c_str());
        s.hits = get(format("%s.hits", prefix).c_str());
        s.misses = get(format("%s.misses", prefix).c_str());
        s.writebacks = get(format("%s.writebacks", prefix).c_str());
    };
    get_cache("zc", run.zCache);
    get_cache("cc", run.colorCache);
    get_cache("t0", run.texL0);
    get_cache("t1", run.texL1);

    // Series CSV: header then one row per frame.
    if (series_start < lines.size()) {
        auto headers = split(lines[series_start], ',');
        for (std::size_t r = series_start + 1; r < lines.size(); ++r) {
            if (lines[r] == kEndMarker)
                break;
            if (trim(lines[r]).empty())
                continue;
            auto cells = split(lines[r], ',');
            for (std::size_t col = 1;
                 col < cells.size() && col < headers.size(); ++col) {
                run.series.record(headers[col],
                                  std::strtod(cells[col].c_str(),
                                              nullptr));
            }
            run.series.endFrame();
        }
    }
    return true;
}

MicroRun
runMicroarch(const std::string &id, int frames, int width, int height,
             bool allow_cache)
{
    MicroSpec spec;
    spec.id = id;
    spec.frames = frames;
    spec.config.width = width;
    spec.config.height = height;
    return runMicroarch(spec, allow_cache);
}

MicroRun
runMicroarch(const MicroSpec &spec, bool allow_cache,
             const ProgressFn &progress)
{
    const std::string &id = spec.id;
    const int frames = spec.frames;
    const int width = spec.config.width;
    const int height = spec.config.height;
    prof::ScopedProcess process(tracePid(id), id);
    WC3D_PROF_SCOPE("run.sim", id);
    auto start = std::chrono::steady_clock::now();

    bool cache_enabled =
        allow_cache && envInt("WC3D_NO_CACHE", 0) == 0;
    std::string path = cachePath(spec);

    // Lock-free double check: the atomic write-then-rename in
    // saveMicroRun means a load either sees a complete file or none,
    // so concurrent runners (threads or processes) need no lock — at
    // worst both simulate and one rename wins with identical content.
    MicroRun run;
    {
        WC3D_PROF_SCOPE("run.cache.load");
        if (cache_enabled && loadMicroRun(run, path) && run.id == id &&
            run.frames == frames && run.width == width &&
            run.height == height) {
            RunMeta::global().noteCacheLookup(true);
            RunMeta::global().noteMicroRun(run, secondsSince(start),
                                           /*from_cache=*/true);
            RunMeta::global().writeIfRequested();
            if (progress)
                progress(frames, frames);
            return run;
        }
    }
    RunMeta::global().noteCacheLookup(false);

    gpu::GpuSimulator sim(spec.config);
    api::Device device(workloads::gameProfile(id).apiKind);
    device.setSink(&sim);
    auto demo = workloads::makeTimedemo(id);
    inform("simulating %s for %d frames at %dx%d", id.c_str(), frames,
           width, height);
    // Same structure as Timedemo::run (identical spans, identical
    // statistics for frameBegin 0), opened up for the frame window and
    // the per-frame progress callback.
    {
        WC3D_PROF_SCOPE("timedemo.setup");
        demo->setup(device);
    }
    for (int f = 0; f < frames; ++f) {
        {
            WC3D_PROF_SCOPE("frame", format("%d", spec.frameBegin + f));
            demo->renderFrame(device, spec.frameBegin + f);
        }
        if (progress)
            progress(f + 1, frames);
    }

    run = MicroRun();
    run.id = id;
    run.frames = frames;
    run.width = width;
    run.height = height;
    run.counters = sim.counters();
    run.zCache = sim.zCacheStats();
    run.colorCache = sim.colorCacheStats();
    run.texL0 = sim.texL0Stats();
    run.texL1 = sim.texL1Stats();
    run.series = sim.frameSeries();

    if (cache_enabled) {
        WC3D_PROF_SCOPE("run.cache.save");
        std::string dir = envString("WC3D_CACHE_DIR", ".wc3d-cache");
        if (!makeDirs(dir))
            warn("could not create run cache dir '%s'", dir.c_str());
        else
            saveMicroRun(run, path); // warns with the faultio reason

    }
    RunMeta::global().noteMicroRun(run, secondsSince(start),
                                   /*from_cache=*/false);
    RunMeta::global().writeIfRequested();
    return run;
}

std::vector<MicroRun>
runSimulatedGames(int frames)
{
    // Independent (game, frames) runs fan out onto the global pool;
    // results land at their id's index, so ordering matches the serial
    // loop. Each run's simulator is confined to the thread executing
    // its task (nested shading parallelism shards only pure work), so
    // per-run statistics are untouched by the fan-out.
    auto ids = workloads::simulatedTimedemoIds();
    std::vector<MicroRun> runs(ids.size());
    {
        PhaseTimer phase("micro_runs");
        WC3D_PROF_SCOPE("run.fanout.micro");
        TaskGroup group;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            group.run([&runs, &ids, i, frames] {
                runs[i] = runMicroarch(ids[i], frames);
            });
        }
        group.wait();
    }
    // Re-export so the manifest includes this phase's wall clock.
    RunMeta::global().writeIfRequested();
    return runs;
}

std::vector<ApiRun>
runAllGamesApi(int frames)
{
    auto ids = workloads::allTimedemoIds();
    std::vector<ApiRun> runs(ids.size());
    {
        PhaseTimer phase("api_runs");
        WC3D_PROF_SCOPE("run.fanout.api");
        TaskGroup group;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            group.run([&runs, &ids, i, frames] {
                runs[i] = runApiLevel(ids[i], frames);
            });
        }
        group.wait();
    }
    RunMeta::global().writeIfRequested();
    return runs;
}

} // namespace wc3d::core
