/**
 * @file
 * Reusable gate checks over BENCH_speed.json documents (schema
 * wc3d-bench-speed-v1, written by bench/bench_common.hh). The
 * examples/bench_gate CLI prints and aggregates these results; the
 * logic lives here so edge cases (mixed-host sweeps, missing sweep
 * points) are unit-testable against hand-built JSON fixtures.
 */

#ifndef WC3D_CORE_BENCHGATE_HH
#define WC3D_CORE_BENCHGATE_HH

#include <string>

#include "common/json.hh"

namespace wc3d::core {

/** Verdict of one gate check. */
enum class GateOutcome
{
    Pass, ///< measured, and within the floor
    Fail, ///< measured, and out of bounds (or document malformed)
    Skip, ///< not meaningfully measurable on this document — never
          ///< gates, always explained in the message
};

struct GateResult
{
    GateOutcome outcome = GateOutcome::Fail;
    std::string message; ///< human-readable explanation
};

/**
 * The 4-thread-vs-1-thread parallel-speedup gate over
 * speed_simulation.sweep. The ratio compares two measurements from the
 * same binary and host, so it is machine-independent — but only
 * meaningful when both points exist and were measured on one host with
 * >= 4 hardware threads. The gate therefore *skips* (never fails)
 * when:
 *  - the sweep lacks a 1- or 4-thread entry (or its seconds are not
 *    positive),
 *  - entries carry mismatched host_threads values (sweep stitched
 *    together from different hosts),
 *  - the sweep host has fewer than 4 hardware threads.
 * Sweeps recorded before per-entry host_threads fall back to the
 * document-level host fingerprint. A document without a
 * speed_simulation.sweep array fails (malformed, not unmeasurable).
 */
GateResult evalParallelSpeedupGate(const json::Value &doc,
                                   double min_speedup);

/**
 * True when a speed_simulation.sweep entry asked for more simulation
 * threads than the measuring host had hardware threads — its wall time
 * measures time-slicing, not scaling, and must not arm any gate.
 * Detected from the explicit "oversubscribed" annotation (written by
 * bench_speed_simulation on re-record) or, for older documents,
 * computed from threads > host_threads. Entries without host_threads
 * are assumed not oversubscribed.
 */
bool sweepEntryOversubscribed(const json::Value &entry);

/**
 * The jit-vs-decoded interpreter speedup gate over hotpath.interp.
 * Each profile's speedup_vs_decoded (vertex, fragment, texture) must
 * reach @p min_speedup. Like the decoded-vs-legacy ratios this
 * compares two measurements from the same binary on the same host, so
 * it is machine-independent. The gate *skips* (never fails) when the
 * document records interp.jit_available == false or omits the flag —
 * non-x86-64 hosts cannot measure the JIT at all. A document with
 * jit_available true but missing per-profile jit numbers fails
 * (the measurement should have happened and did not).
 */
GateResult evalJitSpeedupGate(const json::Value &doc,
                              double min_speedup);

} // namespace wc3d::core

#endif // WC3D_CORE_BENCHGATE_HH
