/**
 * @file
 * Experiment runners: execute a synthetic timedemo at the API level
 * (statistics only) or through the full GPU simulator, with a disk
 * cache for microarchitectural runs. Workloads and the simulator are
 * deterministic, so cached results are bit-identical to fresh runs;
 * every bench binary can therefore share one simulation per game.
 *
 * Environment knobs:
 *  - WC3D_FRAMES:     frames for microarchitectural runs (default 4)
 *  - WC3D_API_FRAMES: frames for API-level runs (default 300)
 *  - WC3D_NO_CACHE:   set to 1 to force re-simulation
 *  - WC3D_CACHE_DIR:  cache directory (default ".wc3d-cache"; nested
 *                     paths are created as needed)
 *  - WC3D_THREADS:    simulation threads (default: hardware
 *                     concurrency; 1 = fully sequential). Independent
 *                     games fan out across the pool and each run
 *                     shards its shading work; all statistics are
 *                     bit-identical for any thread count (see
 *                     DESIGN.md "Threading model").
 */

#ifndef WC3D_CORE_RUNNER_HH
#define WC3D_CORE_RUNNER_HH

#include <functional>
#include <string>
#include <vector>

#include "api/apistats.hh"
#include "gpu/config.hh"
#include "gpu/pipeline.hh"
#include "gpu/simulator.hh"
#include "memory/cache.hh"
#include "stats/series.hh"

namespace wc3d::core {

/** Default frame counts (env-overridable). */
int defaultMicroFrames();
int defaultApiFrames();

/** Result of an API-level (no simulator) run. */
struct ApiRun
{
    std::string id;
    int frames = 0;
    api::ApiStats stats;
};

/**
 * Run timedemo @p id for @p frames frames with no GPU sink.
 * API-level statistics only; fast enough to run uncached.
 */
ApiRun runApiLevel(const std::string &id, int frames);

/** Result of a full-pipeline run. */
struct MicroRun
{
    std::string id;
    int frames = 0;
    int width = 0;
    int height = 0;
    gpu::PipelineCounters counters;
    memsys::CacheStats zCache;
    memsys::CacheStats colorCache;
    memsys::CacheStats texL0;
    memsys::CacheStats texL1;
    stats::FrameSeries series;

    /** Framebuffer pixels per frame. */
    std::uint64_t
    pixels() const
    {
        return static_cast<std::uint64_t>(width) * height;
    }

    /** Total pixels over the whole run (overdraw denominators). */
    std::uint64_t
    totalPixels() const
    {
        return pixels() * static_cast<std::uint64_t>(frames);
    }

    /** Average memory traffic per frame in bytes. */
    double
    bytesPerFrame() const
    {
        return frames
            ? static_cast<double>(counters.traffic.total()) / frames
            : 0.0;
    }
};

/**
 * Run timedemo @p id through the full GPU simulator, using the disk
 * cache when permitted.
 */
MicroRun runMicroarch(const std::string &id, int frames,
                      int width = 1024, int height = 768,
                      bool allow_cache = true);

/**
 * Full description of one microarchitectural run: which timedemo,
 * which frame window, and the complete GpuConfig. This is the unit of
 * work the serve daemon ships to worker processes; a spec-driven run
 * is bit-identical to the classic runMicroarch() call when the spec
 * has the default shape (frameBegin 0, default config).
 */
struct MicroSpec
{
    std::string id;     ///< timedemo id (workloads::isTimedemoId)
    int frameBegin = 0; ///< first frame rendered
    int frames = 0;     ///< frames rendered from frameBegin on
    gpu::GpuConfig config; ///< width/height are taken from here

    /**
     * Hash over frameBegin and every statistic-affecting config field
     * (caches, HZ mode, vertex-cache entries, command overhead).
     * tileSize and the throughput parameters are excluded: results are
     * bit-identical across them, so sharing one cache entry maximizes
     * dedupe. @return 0 exactly for the default shape, keeping legacy
     * cache filenames stable.
     */
    std::uint64_t cacheFingerprint() const;
};

/** Called after each simulated frame of a spec-driven run. */
using ProgressFn = std::function<void(int framesDone, int framesTotal)>;

/**
 * Run @p spec through the full GPU simulator, using the disk cache
 * when permitted; @p progress (when set) is invoked after every
 * rendered frame (and once for a cache hit).
 */
MicroRun runMicroarch(const MicroSpec &spec, bool allow_cache = true,
                      const ProgressFn &progress = {});

/** Convenience: microarch runs for the three simulated OGL games. */
std::vector<MicroRun> runSimulatedGames(int frames);

/** Convenience: API runs for all twelve games. */
std::vector<ApiRun> runAllGamesApi(int frames);

/** @name Cache internals (exposed for tests and the serve daemon) */
/// @{
std::string cachePath(const std::string &id, int frames, int width,
                      int height);
/** Cache path for @p spec; non-default shapes get a fingerprint
 *  suffix so differently-configured runs never collide. */
std::string cachePath(const MicroSpec &spec);
bool saveMicroRun(const MicroRun &run, const std::string &path);
bool loadMicroRun(MicroRun &run, const std::string &path);
/** Serialize @p run to the cache text format (the wire format the
 *  serve daemon returns results in; equality of two encodings is the
 *  bit-identity check). */
std::string encodeMicroRun(const MicroRun &run);
/** Parse an encodeMicroRun() document (validates header and the #end
 *  truncation marker). @return false on malformed input. */
bool decodeMicroRun(MicroRun &run, const std::string &text);
/// @}

} // namespace wc3d::core

#endif // WC3D_CORE_RUNNER_HH
