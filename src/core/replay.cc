#include "core/replay.hh"

#include <cctype>
#include <cstdio>

#include "api/trace.hh"
#include "common/env.hh"
#include "common/fs.hh"
#include "common/prof.hh"
#include "common/strutil.hh"
#include "workloads/games.hh"

namespace wc3d::core {

namespace {

std::string
sanitize(const std::string &id)
{
    std::string out = id;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return out;
}

/** Everything one run produces; the diff compares two of these. */
struct RunSnapshot
{
    api::ApiStats api;
    gpu::PipelineCounters counters;
    memsys::CacheStats zCache;
    memsys::CacheStats colorCache;
    memsys::CacheStats texL0;
    memsys::CacheStats texL1;
    std::string apiSeriesCsv;
    std::string gpuSeriesCsv;
};

void
diffU64(std::vector<std::string> &out, const char *name,
        std::uint64_t live, std::uint64_t replay)
{
    if (live != replay) {
        out.push_back(format(
            "%s: live=%llu replay=%llu", name,
            static_cast<unsigned long long>(live),
            static_cast<unsigned long long>(replay)));
    }
}

void
diffF64(std::vector<std::string> &out, const char *name, double live,
        double replay)
{
    // Both sides compute from identical integer aggregates, so even
    // derived doubles must match bit for bit.
    if (live != replay)
        out.push_back(format("%s: live=%.17g replay=%.17g", name, live,
                             replay));
}

void
diffCache(std::vector<std::string> &out, const char *prefix,
          const memsys::CacheStats &live, const memsys::CacheStats &replay)
{
    diffU64(out, format("%s.accesses", prefix).c_str(), live.accesses,
            replay.accesses);
    diffU64(out, format("%s.hits", prefix).c_str(), live.hits,
            replay.hits);
    diffU64(out, format("%s.misses", prefix).c_str(), live.misses,
            replay.misses);
    diffU64(out, format("%s.writebacks", prefix).c_str(),
            live.writebacks, replay.writebacks);
}

void
diffCsv(std::vector<std::string> &out, const char *name,
        const std::string &live, const std::string &replay)
{
    if (live == replay)
        return;
    auto a = split(live, '\n');
    auto b = split(replay, '\n');
    std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) {
            out.push_back(format("%s line %zu: live='%s' replay='%s'",
                                 name, i, a[i].c_str(), b[i].c_str()));
            return;
        }
    }
    out.push_back(format("%s: live has %zu lines, replay has %zu",
                         name, a.size(), b.size()));
}

void
diffApiStats(std::vector<std::string> &out, const api::ApiStats &live,
             const api::ApiStats &replay)
{
    diffU64(out, "api.frames", live.frames(), replay.frames());
    diffU64(out, "api.batches", live.batches(), replay.batches());
    diffU64(out, "api.indices", live.indices(), replay.indices());
    diffU64(out, "api.indexBytes", live.indexBytes(),
            replay.indexBytes());
    diffU64(out, "api.stateCalls", live.stateCalls(),
            replay.stateCalls());
    const geom::PrimitiveType kinds[] = {
        geom::PrimitiveType::TriangleList,
        geom::PrimitiveType::TriangleStrip,
        geom::PrimitiveType::TriangleFan};
    const char *kind_names[] = {"api.primsTL", "api.primsTS",
                                "api.primsTF"};
    for (int i = 0; i < 3; ++i)
        diffU64(out, kind_names[i], live.primitivesOfType(kinds[i]),
                replay.primitivesOfType(kinds[i]));
    diffF64(out, "api.avgVsInstructions",
            live.avgVertexShaderInstructions(),
            replay.avgVertexShaderInstructions());
    diffF64(out, "api.avgFsInstructions",
            live.avgFragmentInstructions(),
            replay.avgFragmentInstructions());
    diffF64(out, "api.avgFsTexInstructions",
            live.avgFragmentTexInstructions(),
            replay.avgFragmentTexInstructions());
}

void
diffCounters(std::vector<std::string> &out,
             const gpu::PipelineCounters &a,
             const gpu::PipelineCounters &b)
{
    diffU64(out, "gpu.indices", a.indices, b.indices);
    diffU64(out, "gpu.vertexCacheHits", a.vertexCacheHits,
            b.vertexCacheHits);
    diffU64(out, "gpu.vertexCacheMisses", a.vertexCacheMisses,
            b.vertexCacheMisses);
    diffU64(out, "gpu.trianglesAssembled", a.trianglesAssembled,
            b.trianglesAssembled);
    diffU64(out, "gpu.trianglesClipped", a.trianglesClipped,
            b.trianglesClipped);
    diffU64(out, "gpu.trianglesCulled", a.trianglesCulled,
            b.trianglesCulled);
    diffU64(out, "gpu.trianglesTraversed", a.trianglesTraversed,
            b.trianglesTraversed);
    diffU64(out, "gpu.rasterQuads", a.rasterQuads, b.rasterQuads);
    diffU64(out, "gpu.rasterFullQuads", a.rasterFullQuads,
            b.rasterFullQuads);
    diffU64(out, "gpu.rasterFragments", a.rasterFragments,
            b.rasterFragments);
    diffU64(out, "gpu.quadsRemovedHz", a.quadsRemovedHz,
            b.quadsRemovedHz);
    diffU64(out, "gpu.quadsRemovedZStencil", a.quadsRemovedZStencil,
            b.quadsRemovedZStencil);
    diffU64(out, "gpu.quadsRemovedAlpha", a.quadsRemovedAlpha,
            b.quadsRemovedAlpha);
    diffU64(out, "gpu.quadsRemovedColorMask", a.quadsRemovedColorMask,
            b.quadsRemovedColorMask);
    diffU64(out, "gpu.quadsBlended", a.quadsBlended, b.quadsBlended);
    diffU64(out, "gpu.zStencilQuads", a.zStencilQuads,
            b.zStencilQuads);
    diffU64(out, "gpu.zStencilFullQuads", a.zStencilFullQuads,
            b.zStencilFullQuads);
    diffU64(out, "gpu.zStencilFragments", a.zStencilFragments,
            b.zStencilFragments);
    diffU64(out, "gpu.shadedQuads", a.shadedQuads, b.shadedQuads);
    diffU64(out, "gpu.shadedFragments", a.shadedFragments,
            b.shadedFragments);
    diffU64(out, "gpu.blendedFragments", a.blendedFragments,
            b.blendedFragments);
    diffU64(out, "gpu.vertexInstructions", a.vertexInstructions,
            b.vertexInstructions);
    diffU64(out, "gpu.fragmentInstructions", a.fragmentInstructions,
            b.fragmentInstructions);
    diffU64(out, "gpu.fragmentTexInstructions",
            a.fragmentTexInstructions, b.fragmentTexInstructions);
    diffU64(out, "gpu.textureRequests", a.textureRequests,
            b.textureRequests);
    diffU64(out, "gpu.bilinearSamples", a.bilinearSamples,
            b.bilinearSamples);
    for (int i = 0; i < memsys::kNumClients; ++i) {
        diffU64(out, format("gpu.readBytes[%d]", i).c_str(),
                a.traffic.readBytes[i], b.traffic.readBytes[i]);
        diffU64(out, format("gpu.writeBytes[%d]", i).c_str(),
                a.traffic.writeBytes[i], b.traffic.writeBytes[i]);
    }
}

} // namespace

std::string
ReplayReport::firstDivergence() const
{
    if (!traceError.empty())
        return traceError;
    return divergences.empty() ? std::string() : divergences.front();
}

ReplayReport
replayAndDiff(const std::string &id, int frames, int width, int height,
              const std::string &trace_path, bool keep_trace)
{
    ReplayReport report;
    report.id = id;
    report.frames = frames;

    std::string path = trace_path;
    if (path.empty()) {
        std::string dir = envString("WC3D_CACHE_DIR", ".wc3d-cache");
        if (!makeDirs(dir)) {
            report.traceError =
                format("cannot create trace directory '%s'",
                       dir.c_str());
            return report;
        }
        path = format("%s/replay_%s_f%d.wc3dtrc", dir.c_str(),
                      sanitize(id).c_str(), frames);
    }

    gpu::GpuConfig config;
    config.width = width;
    config.height = height;

    auto snapshot = [&](api::Device &device, gpu::GpuSimulator &sim) {
        RunSnapshot s;
        s.api = device.stats();
        s.counters = sim.counters();
        s.zCache = sim.zCacheStats();
        s.colorCache = sim.colorCacheStats();
        s.texL0 = sim.texL0Stats();
        s.texL1 = sim.texL1Stats();
        s.apiSeriesCsv = device.stats().series().toCsv();
        s.gpuSeriesCsv = sim.frameSeries().toCsv();
        return s;
    };

    // Live run, recording the trace while feeding the simulator.
    RunSnapshot live;
    {
        WC3D_PROF_SCOPE("replay.record", id);
        gpu::GpuSimulator sim(config);
        api::Device device(workloads::gameProfile(id).apiKind);
        device.setSink(&sim);
        api::TraceWriter writer(path);
        if (!writer.ok()) {
            report.traceError =
                "trace write: " + writer.error()->describe();
            return report;
        }
        device.setRecorder(&writer);
        auto demo = workloads::makeTimedemo(id);
        demo->run(device, frames);
        device.setRecorder(nullptr);
        report.commandsRecorded = writer.commandsWritten();
        if (!writer.close()) {
            report.traceError =
                "trace write: " + writer.error()->describe();
            return report;
        }
        live = snapshot(device, sim);
    }

    // Replay through a fresh device + simulator.
    RunSnapshot replayed;
    {
        WC3D_PROF_SCOPE("replay.play", id);
        gpu::GpuSimulator sim(config);
        api::Device device(workloads::gameProfile(id).apiKind);
        device.setSink(&sim);
        api::TraceReader reader(path);
        report.commandsReplayed = api::playTrace(reader, device);
        if (reader.error()) {
            report.traceError =
                "trace read: " + reader.error()->describe();
            if (!keep_trace)
                std::remove(path.c_str());
            return report;
        }
        replayed = snapshot(device, sim);
    }
    if (!keep_trace)
        std::remove(path.c_str());

    diffU64(report.divergences, "commandsReplayed",
            report.commandsRecorded, report.commandsReplayed);
    diffApiStats(report.divergences, live.api, replayed.api);
    diffCounters(report.divergences, live.counters, replayed.counters);
    diffCache(report.divergences, "zCache", live.zCache,
              replayed.zCache);
    diffCache(report.divergences, "colorCache", live.colorCache,
              replayed.colorCache);
    diffCache(report.divergences, "texL0", live.texL0, replayed.texL0);
    diffCache(report.divergences, "texL1", live.texL1, replayed.texL1);
    diffCsv(report.divergences, "api series", live.apiSeriesCsv,
            replayed.apiSeriesCsv);
    diffCsv(report.divergences, "gpu series", live.gpuSeriesCsv,
            replayed.gpuSeriesCsv);
    return report;
}

std::vector<ReplayReport>
replayAndDiffAll(int frames, int width, int height)
{
    std::vector<ReplayReport> reports;
    for (const auto &id : workloads::allTimedemoIds())
        reports.push_back(replayAndDiff(id, frames, width, height));
    return reports;
}

} // namespace wc3d::core
