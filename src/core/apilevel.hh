/**
 * @file
 * API-call-level characterization (paper Section III.A/B/D): builders
 * for Tables I, III, IV, V and XII and the per-frame figure series
 * (Figs. 1, 2, 3 and 8).
 */

#ifndef WC3D_CORE_APILEVEL_HH
#define WC3D_CORE_APILEVEL_HH

#include "core/runner.hh"
#include "stats/table.hh"

namespace wc3d::core {

/** Table I: game workload description (static, from the profiles). */
stats::Table tableWorkloads();

/** Table III: indices per batch/frame, index size, index BW @100fps. */
stats::Table tableIndexTraffic(const std::vector<ApiRun> &runs);

/** Table IV: average vertex shader instructions (OGL / D3D halves). */
stats::Table tableVertexShader(const std::vector<ApiRun> &runs);

/** Table V: primitive utilization and primitives per frame. */
stats::Table tablePrimitives(const std::vector<ApiRun> &runs);

/** Table XII: fragment instructions, texture instructions, ALU:TEX. */
stats::Table tableFragmentShader(const std::vector<ApiRun> &runs);

/**
 * Figure series CSV for one run: subset of the per-frame API series
 * ("batches", "indices", "index_bytes", "state_calls", "fs_instr_avg",
 * "fs_tex_avg").
 */
std::string figureCsv(const ApiRun &run);

} // namespace wc3d::core

#endif // WC3D_CORE_APILEVEL_HH
