#include "core/apilevel.hh"

#include "common/strutil.hh"
#include "workloads/games.hh"

namespace wc3d::core {

namespace {

using geom::PrimitiveType;

std::string
pct(double v)
{
    return v <= 0.0 ? std::string("-") : format("%.1f%%", v);
}

} // namespace

stats::Table
tableWorkloads()
{
    stats::Table t({"Game/Timedemo", "#Frames", "Duration@30fps",
                    "Texture quality", "Aniso", "Shaders", "API",
                    "Engine", "Release"});
    for (const auto &id : workloads::allTimedemoIds()) {
        const auto &p = workloads::gameProfile(id);
        int secs = p.paperFrames / 30;
        std::string quality =
            p.filter == tex::TexFilter::Anisotropic
                ? "High/Anisotropic"
                : "High/Trilinear";
        t.addRow({id, format("%d", p.paperFrames),
                  format("%d'%02d\"", secs / 60, secs % 60), quality,
                  p.filter == tex::TexFilter::Anisotropic
                      ? format("%dX", p.maxAniso)
                      : "-",
                  p.usesShaders ? "YES" : "NO",
                  api::graphicsApiName(p.apiKind), p.engine,
                  p.releaseDate});
    }
    return t;
}

stats::Table
tableIndexTraffic(const std::vector<ApiRun> &runs)
{
    stats::Table t({"Game/Timedemo", "idx/batch", "idx/frame",
                    "bytes/idx", "BW@100fps"});
    for (const auto &run : runs) {
        const auto &p = workloads::gameProfile(run.id);
        t.addRow({run.id,
                  format("%.0f", run.stats.avgIndicesPerBatch()),
                  format("%.0f", run.stats.avgIndicesPerFrame()),
                  format("%d", api::indexTypeBytes(p.indexType)),
                  format("%.0f MB/s",
                         run.stats.indexBwAtFps(100.0) / 1e6)});
    }
    return t;
}

stats::Table
tableVertexShader(const std::vector<ApiRun> &runs)
{
    stats::Table t({"Game/Timedemo", "API", "Avg VS instructions"});
    for (const auto &run : runs) {
        const auto &p = workloads::gameProfile(run.id);
        t.addRow({run.id, api::graphicsApiName(p.apiKind),
                  format("%.2f",
                         run.stats.avgVertexShaderInstructions())});
    }
    return t;
}

stats::Table
tablePrimitives(const std::vector<ApiRun> &runs)
{
    stats::Table t({"Game/Timedemo", "TL", "TS", "TF", "Prims/frame"});
    for (const auto &run : runs) {
        t.addRow({run.id,
                  pct(run.stats.primitiveSharePct(
                      PrimitiveType::TriangleList)),
                  pct(run.stats.primitiveSharePct(
                      PrimitiveType::TriangleStrip)),
                  pct(run.stats.primitiveSharePct(
                      PrimitiveType::TriangleFan)),
                  format("%.0f", run.stats.avgPrimitivesPerFrame())});
    }
    return t;
}

stats::Table
tableFragmentShader(const std::vector<ApiRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Instructions", "Texture instr",
                    "ALU:TEX"});
    for (const auto &run : runs) {
        t.addRow({run.id,
                  format("%.2f", run.stats.avgFragmentInstructions()),
                  format("%.2f",
                         run.stats.avgFragmentTexInstructions()),
                  format("%.2f", run.stats.aluToTexRatio())});
    }
    return t;
}

std::string
figureCsv(const ApiRun &run)
{
    return run.stats.series().toCsv();
}

} // namespace wc3d::core
