/**
 * @file
 * System bus catalogue (paper Table VI): AGP and PCI Express
 * bandwidths, against which the paper argues that index traffic
 * (< 1 GB/s) never justifies strips over lists.
 */

#ifndef WC3D_CORE_BUSES_HH
#define WC3D_CORE_BUSES_HH

#include <string>
#include <vector>

#include "stats/table.hh"

namespace wc3d::core {

/** One bus generation. */
struct BusSpec
{
    std::string name;
    std::string width;
    std::string speed;
    double bandwidthGBs = 0.0;
};

/** The buses of the paper's Table VI. */
const std::vector<BusSpec> &busCatalog();

/** Table VI. */
stats::Table tableBuses();

/**
 * Headroom factor of @p bus for a workload needing @p index_bw_bytes_s.
 */
double busHeadroom(const BusSpec &bus, double index_bw_bytes_s);

} // namespace wc3d::core

#endif // WC3D_CORE_BUSES_HH
