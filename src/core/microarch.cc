#include "core/microarch.hh"

#include "common/strutil.hh"
#include "memory/controller.hh"

namespace wc3d::core {

namespace {

double
clientBytes(const gpu::PipelineCounters &c, memsys::Client client)
{
    int i = static_cast<int>(client);
    return static_cast<double>(c.traffic.readBytes[i] +
                               c.traffic.writeBytes[i]);
}

} // namespace

stats::Table
tableConfig(const gpu::GpuConfig &config)
{
    stats::Table t({"Parameter", "R520", "This simulator"});
    t.addRow({"Vertex/Fragment shaders", "8/16",
              format("%d (unified)", config.unifiedShaders)});
    t.addRow({"Triangle setup", "2 triangles/cycle",
              format("%d triangles/cycle", config.trianglesPerCycle)});
    t.addRow({"Texture rate", "16 bilinears/cycle",
              format("%d bilinears/cycle", config.bilinearsPerCycle)});
    t.addRow({"ZStencil/Color rates", "16 / 16 fragments/cycle",
              format("%d / %d fragments/cycle", config.zOpsPerCycle,
                     config.colorOpsPerCycle)});
    t.addRow({"Memory BW", "> 64 bytes/cycle",
              format("%d bytes/cycle", config.memBytesPerCycle)});
    t.addRow({"Resolution", "1024x768",
              format("%dx%d", config.width, config.height)});
    return t;
}

stats::Table
tableClipCull(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "% clipped", "% culled",
                    "% traversed"});
    for (const auto &r : runs) {
        t.addRow({r.id, format("%.0f%%", r.counters.pctClipped()),
                  format("%.0f%%", r.counters.pctCulled()),
                  format("%.0f%%", r.counters.pctTraversed())});
    }
    return t;
}

stats::Table
tableTriangleSize(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Raster", "Z&Stencil", "Shading",
                    "Blending"});
    for (const auto &r : runs) {
        t.addRow({r.id,
                  format("%.0f", r.counters.avgTriangleSizeRaster()),
                  format("%.0f", r.counters.avgTriangleSizeZStencil()),
                  format("%.0f", r.counters.avgTriangleSizeShaded()),
                  format("%.0f", r.counters.avgTriangleSizeBlended())});
    }
    return t;
}

stats::Table
tableQuadRemoval(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "HZ", "Z&Stencil", "Alpha",
                    "Color Mask", "Blending"});
    for (const auto &r : runs) {
        t.addRow({r.id,
                  format("%.2f%%", r.counters.pctQuadsRemovedHz()),
                  format("%.2f%%",
                         r.counters.pctQuadsRemovedZStencil()),
                  format("%.2f%%", r.counters.pctQuadsRemovedAlpha()),
                  format("%.2f%%",
                         r.counters.pctQuadsRemovedColorMask()),
                  format("%.2f%%", r.counters.pctQuadsBlended())});
    }
    return t;
}

stats::Table
tableQuadEfficiency(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Raster", "Z&Stencil"});
    for (const auto &r : runs) {
        t.addRow({r.id,
                  format("%.1f%%",
                         100.0 * r.counters.rasterQuadEfficiency()),
                  format("%.1f%%",
                         100.0 * r.counters.zStencilQuadEfficiency())});
    }
    return t;
}

stats::Table
tableOverdraw(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Raster", "Z&Stencil", "Shading",
                    "Blending"});
    for (const auto &r : runs) {
        std::uint64_t px = r.totalPixels();
        t.addRow({r.id, format("%.2f", r.counters.overdrawRaster(px)),
                  format("%.2f", r.counters.overdrawZStencil(px)),
                  format("%.2f", r.counters.overdrawShaded(px)),
                  format("%.2f", r.counters.overdrawBlended(px))});
    }
    return t;
}

stats::Table
tableBilinears(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Bilinears/request",
                    "ALU instr/bilinear"});
    for (const auto &r : runs) {
        t.addRow({r.id,
                  format("%.2f", r.counters.bilinearsPerRequest()),
                  format("%.2f", r.counters.aluPerBilinear())});
    }
    return t;
}

stats::Table
tableCaches(const std::vector<MicroRun> &runs,
            const gpu::GpuConfig &config)
{
    std::vector<std::string> headers = {"Cache", "Size", "Way/Line"};
    for (const auto &r : runs)
        headers.push_back(r.id);
    stats::Table t(headers);

    auto row = [&](const char *name, int ways, int sets, int line,
                   auto stat_of) {
        std::vector<std::string> cells = {
            name, format("%d KB", ways * sets * line / 1024),
            sets == 1 ? format("%dw x %dB", ways, line)
                      : format("%dw x %ds x %dB", ways, sets, line)};
        for (const auto &r : runs)
            cells.push_back(format("%.1f%%", 100.0 * stat_of(r)));
        t.addRow(cells);
    };

    row("Z&Stencil", config.zCache.ways, config.zCache.sets,
        config.zCache.lineBytes,
        [](const MicroRun &r) { return r.zCache.hitRate(); });
    row("Texture L0", config.textureCache.l0Ways,
        config.textureCache.l0Sets, config.textureCache.l0Line,
        [](const MicroRun &r) { return r.texL0.hitRate(); });
    row("Texture L1", config.textureCache.l1Ways,
        config.textureCache.l1Sets, config.textureCache.l1Line,
        [](const MicroRun &r) { return r.texL1.hitRate(); });
    row("Color", config.colorCache.ways, config.colorCache.sets,
        config.colorCache.lineBytes,
        [](const MicroRun &r) { return r.colorCache.hitRate(); });
    return t;
}

stats::Table
tableMemoryBw(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "MB/frame", "%Read", "%Write",
                    "BW@100fps"});
    for (const auto &r : runs) {
        double total = static_cast<double>(r.counters.traffic.total());
        double reads =
            static_cast<double>(r.counters.traffic.totalRead());
        t.addRow({r.id, format("%.0f", r.bytesPerFrame() / 1e6),
                  format("%.0f%%", total ? 100.0 * reads / total : 0.0),
                  format("%.0f%%",
                         total ? 100.0 * (total - reads) / total : 0.0),
                  format("%.0f GB/s",
                         r.bytesPerFrame() * 100.0 / 1e9)});
    }
    return t;
}

stats::Table
tableTrafficDistribution(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Vertex", "Z&Stencil", "Texture",
                    "Color", "DAC", "CP"});
    using memsys::Client;
    for (const auto &r : runs) {
        double total = static_cast<double>(r.counters.traffic.total());
        auto share = [&](Client c) {
            return format("%.1f%%",
                          total ? 100.0 * clientBytes(r.counters, c) /
                                      total
                                : 0.0);
        };
        t.addRow({r.id, share(Client::Vertex), share(Client::ZStencil),
                  share(Client::Texture), share(Client::Color),
                  share(Client::Dac), share(Client::CommandProcessor)});
    }
    return t;
}

stats::Table
tableBytesPerItem(const std::vector<MicroRun> &runs)
{
    stats::Table t({"Game/Timedemo", "Vertex", "Z&Stencil", "Shaded",
                    "Color"});
    using memsys::Client;
    for (const auto &r : runs) {
        const auto &c = r.counters;
        auto per = [](double bytes, std::uint64_t n) {
            return n ? bytes / static_cast<double>(n) : 0.0;
        };
        t.addRow({r.id,
                  format("%.2f", per(clientBytes(c, Client::Vertex),
                                     c.vertexCacheMisses)),
                  format("%.2f", per(clientBytes(c, Client::ZStencil),
                                     c.zStencilFragments)),
                  format("%.2f", per(clientBytes(c, Client::Texture),
                                     c.shadedFragments)),
                  format("%.2f", per(clientBytes(c, Client::Color),
                                     c.blendedFragments))});
    }
    return t;
}

std::string
microFigureCsv(const MicroRun &run)
{
    return run.series.toCsv();
}

} // namespace wc3d::core
