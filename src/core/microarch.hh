/**
 * @file
 * Microarchitectural characterization (paper Section III.B/C/D/E):
 * builders for Tables VII-XI and XIII-XVII from full-pipeline runs of
 * the simulated OpenGL workloads.
 */

#ifndef WC3D_CORE_MICROARCH_HH
#define WC3D_CORE_MICROARCH_HH

#include "core/runner.hh"
#include "gpu/config.hh"
#include "stats/table.hh"

namespace wc3d::core {

/** Table II: simulator configuration vs the R520 reference. */
stats::Table tableConfig(const gpu::GpuConfig &config);

/** Table VII: % clipped / culled / traversed triangles. */
stats::Table tableClipCull(const std::vector<MicroRun> &runs);

/** Table VIII: average triangle size (fragments) per stage. */
stats::Table tableTriangleSize(const std::vector<MicroRun> &runs);

/** Table IX: % of quads removed or processed at each stage. */
stats::Table tableQuadRemoval(const std::vector<MicroRun> &runs);

/** Table X: quad efficiency (% complete quads). */
stats::Table tableQuadEfficiency(const std::vector<MicroRun> &runs);

/** Table XI: average overdraw per pixel per stage. */
stats::Table tableOverdraw(const std::vector<MicroRun> &runs);

/** Table XIII: bilinear samples per request, ALU:bilinear ratio. */
stats::Table tableBilinears(const std::vector<MicroRun> &runs);

/** Table XIV: cache configuration and hit rates. */
stats::Table tableCaches(const std::vector<MicroRun> &runs,
                         const gpu::GpuConfig &config);

/** Table XV: MB/frame, %read, %write, BW@100fps. */
stats::Table tableMemoryBw(const std::vector<MicroRun> &runs);

/** Table XVI: memory traffic share per pipeline stage. */
stats::Table tableTrafficDistribution(const std::vector<MicroRun> &runs);

/** Table XVII: bytes per vertex and per fragment per stage. */
stats::Table tableBytesPerItem(const std::vector<MicroRun> &runs);

/** Figure 5/6/7 series CSV for one run (vertex cache hit rate,
 *  indices/assembled/traversed, per-frame triangle sizes). */
std::string microFigureCsv(const MicroRun &run);

} // namespace wc3d::core

#endif // WC3D_CORE_MICROARCH_HH
