/**
 * @file
 * Shared geometry-pipeline types: transformed vertices carrying clip
 * position + varyings, primitive types, assembled triangles.
 */

#ifndef WC3D_GEOM_TYPES_HH
#define WC3D_GEOM_TYPES_HH

#include <array>
#include <cstdint>

#include "common/vecmath.hh"

namespace wc3d::geom {

/** Interpolated attributes carried from vertex to fragment shading. */
constexpr int kMaxVaryings = 8;

/** Output of the vertex shader for one vertex. */
struct TransformedVertex
{
    Vec4 clip;  ///< clip-space position
    std::array<Vec4, kMaxVaryings> varyings{};
};

/** Primitive topologies used by the paper's workloads (Table V). */
enum class PrimitiveType : std::uint8_t
{
    TriangleList,
    TriangleStrip,
    TriangleFan,
};

/** Human-readable topology name ("TL", "TS", "TF"). */
const char *primitiveShortName(PrimitiveType t);

/** Triangles produced by @p index_count indices under topology @p t. */
int trianglesForIndices(PrimitiveType t, int index_count);

/** One assembled triangle (positions into a transformed-vertex array). */
struct AssembledTriangle
{
    std::uint32_t v[3];
};

} // namespace wc3d::geom

#endif // WC3D_GEOM_TYPES_HH
