/**
 * @file
 * Primitive assembly: groups transformed vertices into triangles
 * according to the primitive topology (triangle lists, strips, fans —
 * the only primitives the paper's workloads use, Table V).
 */

#ifndef WC3D_GEOM_ASSEMBLY_HH
#define WC3D_GEOM_ASSEMBLY_HH

#include <cstdint>
#include <span>
#include <vector>

#include "geom/types.hh"

namespace wc3d::geom {

/**
 * Assemble triangles from a stream of *positions* into the transformed
 * vertex array (i.e. post-vertex-shading slots, 0..n-1 in stream order).
 *
 * Strips alternate winding; odd triangles are emitted with their first
 * two vertices swapped so all output triangles share one winding.
 * Degenerate entries (repeated positions) are kept — fate is decided by
 * clip/cull like on real hardware.
 *
 * @param type   topology
 * @param count  number of vertices in the stream
 * @param out    receives one entry per assembled triangle
 */
void assembleTriangles(PrimitiveType type, int count,
                       std::vector<AssembledTriangle> &out);

/** Statistics kept by the assembly stage across a frame/run. */
struct AssemblyStats
{
    std::uint64_t indices = 0;    ///< vertices entering assembly
    std::uint64_t triangles = 0;  ///< triangles leaving assembly

    void
    note(PrimitiveType type, int index_count)
    {
        indices += static_cast<std::uint64_t>(index_count);
        triangles += static_cast<std::uint64_t>(
            trianglesForIndices(type, index_count));
    }
};

} // namespace wc3d::geom

#endif // WC3D_GEOM_ASSEMBLY_HH
