#include "geom/viewport.hh"

#include "common/log.hh"

namespace wc3d::geom {

ScreenVertex
toScreen(const TransformedVertex &vert, const Viewport &vp)
{
    WC3D_ASSERT(vert.clip.w > 0.0f);
    float inv_w = 1.0f / vert.clip.w;
    float ndc_x = vert.clip.x * inv_w;
    float ndc_y = vert.clip.y * inv_w;
    float ndc_z = vert.clip.z * inv_w;

    ScreenVertex out;
    out.x = static_cast<float>(vp.x) +
            (ndc_x + 1.0f) * 0.5f * static_cast<float>(vp.width);
    out.y = static_cast<float>(vp.y) +
            (1.0f - ndc_y) * 0.5f * static_cast<float>(vp.height);
    out.z = clampf((ndc_z + 1.0f) * 0.5f, 0.0f, 1.0f);
    out.invW = inv_w;
    out.varyings = vert.varyings;
    return out;
}

ScreenTriangle
toScreenTriangle(const std::array<TransformedVertex, 3> &tri,
                 const Viewport &vp)
{
    ScreenTriangle out;
    for (int i = 0; i < 3; ++i)
        out.v[i] = toScreen(tri[static_cast<std::size_t>(i)], vp);
    return out;
}

} // namespace wc3d::geom
