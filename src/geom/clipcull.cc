#include "geom/clipcull.hh"

#include <array>

#include "common/log.hh"

namespace wc3d::geom {

float
projectedSignedArea(const Vec4 &a, const Vec4 &b, const Vec4 &c)
{
    float ax = a.x / a.w, ay = a.y / a.w;
    float bx = b.x / b.w, by = b.y / b.w;
    float cx = c.x / c.w, cy = c.y / c.w;
    return 0.5f * ((bx - ax) * (cy - ay) - (cx - ax) * (by - ay));
}

namespace {

/** Clip-space plane functions; inside when >= 0. */
enum Plane
{
    kPlaneLeft,   // w + x
    kPlaneRight,  // w - x
    kPlaneBottom, // w + y
    kPlaneTop,    // w - y
    kPlaneNear,   // w + z
    kPlaneFar,    // w - z
    kNumPlanes,
};

float
planeValue(const Vec4 &v, int plane)
{
    switch (plane) {
      case kPlaneLeft:
        return v.w + v.x;
      case kPlaneRight:
        return v.w - v.x;
      case kPlaneBottom:
        return v.w + v.y;
      case kPlaneTop:
        return v.w - v.y;
      case kPlaneNear:
        return v.w + v.z;
      case kPlaneFar:
        return v.w - v.z;
    }
    return 0.0f;
}

TransformedVertex
lerpVertex(const TransformedVertex &a, const TransformedVertex &b, float t)
{
    TransformedVertex out;
    out.clip = lerp(a.clip, b.clip, t);
    for (int i = 0; i < kMaxVaryings; ++i)
        out.varyings[static_cast<std::size_t>(i)] =
            lerp(a.varyings[static_cast<std::size_t>(i)],
                 b.varyings[static_cast<std::size_t>(i)], t);
    return out;
}

/** Sutherland-Hodgman against one plane function. */
int
clipAgainst(const TransformedVertex *in, int in_count,
            TransformedVertex *out, float (*fn)(const Vec4 &))
{
    int out_count = 0;
    for (int i = 0; i < in_count; ++i) {
        const TransformedVertex &cur = in[i];
        const TransformedVertex &next = in[(i + 1) % in_count];
        float fc = fn(cur.clip);
        float fnext = fn(next.clip);
        if (fc >= 0.0f)
            out[out_count++] = cur;
        if ((fc >= 0.0f) != (fnext >= 0.0f)) {
            float t = fc / (fc - fnext);
            out[out_count++] = lerpVertex(cur, next, t);
        }
    }
    return out_count;
}

float
nearFn(const Vec4 &v)
{
    return v.w + v.z;
}

float
wFn(const Vec4 &v)
{
    return v.w - 1e-5f;
}

} // namespace

TriangleFate
ClipCull::process(const TransformedVertex verts[3], CullMode cull_mode,
                  std::vector<std::array<TransformedVertex, 3>> &out)
{
    ++_stats.input;

    // Trivial reject: all three vertices outside one frustum plane.
    for (int p = 0; p < kNumPlanes; ++p) {
        if (planeValue(verts[0].clip, p) < 0.0f &&
            planeValue(verts[1].clip, p) < 0.0f &&
            planeValue(verts[2].clip, p) < 0.0f) {
            ++_stats.clipped;
            return TriangleFate::Clipped;
        }
    }

    // Near-plane (and w-epsilon) clipping when any vertex is behind.
    bool needs_clip = false;
    for (int i = 0; i < 3; ++i) {
        needs_clip |= nearFn(verts[i].clip) < 0.0f;
        needs_clip |= wFn(verts[i].clip) < 0.0f;
    }

    TransformedVertex poly_a[8];
    TransformedVertex poly_b[8];
    int count;
    if (needs_clip) {
        count = clipAgainst(verts, 3, poly_a, wFn);
        count = clipAgainst(poly_a, count, poly_b, nearFn);
        if (count < 3) {
            // The visible part degenerated away.
            ++_stats.clipped;
            return TriangleFate::Clipped;
        }
    } else {
        poly_b[0] = verts[0];
        poly_b[1] = verts[1];
        poly_b[2] = verts[2];
        count = 3;
    }

    // Face culling on the (post-clip) projected winding. Clipping
    // preserves orientation, so the first fan triangle decides.
    float area = projectedSignedArea(poly_b[0].clip, poly_b[1].clip,
                                     poly_b[2].clip);
    bool reject = area == 0.0f;
    if (cull_mode == CullMode::Back)
        reject |= area < 0.0f;
    else if (cull_mode == CullMode::Front)
        reject |= area > 0.0f;
    if (reject) {
        ++_stats.culled;
        return TriangleFate::Culled;
    }

    for (int i = 1; i + 1 < count; ++i)
        out.push_back({poly_b[0], poly_b[i], poly_b[i + 1]});
    ++_stats.traversed;
    return TriangleFate::Traversed;
}

} // namespace wc3d::geom
