/**
 * @file
 * Post-transform vertex cache. "When using indexed mode, this vertex
 * cache allows reusing already transformed vertices, provided that two
 * references to a vertex are close in time. Thus ... the triangle list
 * will behave, from a vertex shading point of view, like a triangle
 * strip" (paper Section III.B). The paper's Figure 5 plots this cache's
 * hit rate against the theoretical 66% bound for adjacent triangles.
 *
 * Modelled as a FIFO of recently transformed vertex indices, which is
 * how the post-transform caches of the era behaved.
 */

#ifndef WC3D_GEOM_VERTEXCACHE_HH
#define WC3D_GEOM_VERTEXCACHE_HH

#include <cstdint>
#include <vector>

namespace wc3d::geom {

/** FIFO post-transform vertex cache model with slot storage. */
class VertexCache
{
  public:
    /** @param entries capacity in vertices (R520-class GPUs: ~16). */
    explicit VertexCache(int entries = 16);

    /**
     * Look up vertex @p index.
     * @return the cache slot holding it, or -1 on miss (stats updated).
     */
    int lookup(std::uint32_t index);

    /**
     * Install vertex @p index after a miss, evicting the oldest entry.
     * @return the slot it now occupies.
     */
    int insert(std::uint32_t index);

    /** Forget all entries (between draw batches: indices are relative
     *  to the batch's vertex buffer). */
    void invalidate();

    int entries() const { return static_cast<int>(_slots.size()); }

    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t lookups() const { return _hits + _misses; }

    /** Hit rate in [0,1]; 0 when no lookups. */
    double hitRate() const;

    void resetStats();

  private:
    struct Slot
    {
        bool valid = false;
        std::uint32_t index = 0;
    };

    std::vector<Slot> _slots;
    int _nextVictim = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

} // namespace wc3d::geom

#endif // WC3D_GEOM_VERTEXCACHE_HH
