#include "geom/assembly.hh"

#include "common/log.hh"
#include "common/prof.hh"

namespace wc3d::geom {

const char *
primitiveShortName(PrimitiveType t)
{
    switch (t) {
      case PrimitiveType::TriangleList:
        return "TL";
      case PrimitiveType::TriangleStrip:
        return "TS";
      case PrimitiveType::TriangleFan:
        return "TF";
    }
    return "?";
}

int
trianglesForIndices(PrimitiveType t, int index_count)
{
    switch (t) {
      case PrimitiveType::TriangleList:
        return index_count / 3;
      case PrimitiveType::TriangleStrip:
      case PrimitiveType::TriangleFan:
        return index_count >= 3 ? index_count - 2 : 0;
    }
    return 0;
}

void
assembleTriangles(PrimitiveType type, int count,
                  std::vector<AssembledTriangle> &out)
{
    WC3D_PROF_SCOPE("geom.assembly");
    switch (type) {
      case PrimitiveType::TriangleList:
        for (int i = 0; i + 2 < count; i += 3) {
            out.push_back({{static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(i + 1),
                            static_cast<std::uint32_t>(i + 2)}});
        }
        break;
      case PrimitiveType::TriangleStrip:
        for (int i = 0; i + 2 < count; ++i) {
            if (i & 1) {
                out.push_back({{static_cast<std::uint32_t>(i + 1),
                                static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(i + 2)}});
            } else {
                out.push_back({{static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(i + 1),
                                static_cast<std::uint32_t>(i + 2)}});
            }
        }
        break;
      case PrimitiveType::TriangleFan:
        for (int i = 1; i + 1 < count; ++i) {
            out.push_back({{0u, static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(i + 1)}});
        }
        break;
    }
}

} // namespace wc3d::geom
