/**
 * @file
 * Viewport transform: clip space -> window coordinates, producing the
 * screen vertices consumed by triangle setup. Depth maps to [0,1];
 * window y grows downward (raster convention).
 */

#ifndef WC3D_GEOM_VIEWPORT_HH
#define WC3D_GEOM_VIEWPORT_HH

#include <array>

#include "geom/types.hh"

namespace wc3d::geom {

/** Destination rectangle of the render target. */
struct Viewport
{
    int x = 0;
    int y = 0;
    int width = 0;
    int height = 0;
};

/** A vertex in window coordinates, ready for triangle setup. */
struct ScreenVertex
{
    float x = 0.0f;     ///< window x in pixels
    float y = 0.0f;     ///< window y in pixels (down)
    float z = 0.0f;     ///< depth in [0,1]
    float invW = 0.0f;  ///< 1/clip.w for perspective-correct interpolation
    std::array<Vec4, kMaxVaryings> varyings{};
};

/** A triangle in window coordinates. */
struct ScreenTriangle
{
    ScreenVertex v[3];
};

/**
 * Apply perspective divide and viewport mapping.
 * @pre vert.clip.w > 0 (guaranteed after clipping).
 */
ScreenVertex toScreen(const TransformedVertex &vert, const Viewport &vp);

/** Transform a whole clip-space triangle. */
ScreenTriangle toScreenTriangle(
    const std::array<TransformedVertex, 3> &tri, const Viewport &vp);

} // namespace wc3d::geom

#endif // WC3D_GEOM_VIEWPORT_HH
