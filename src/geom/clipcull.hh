/**
 * @file
 * Clipper and culling stage: tests assembled triangles against the view
 * frustum and rejects back (or front) faces, "to avoid rasterization of
 * non-visible triangle faces". Produces the paper's Table VII
 * percentages (clipped / culled / traversed).
 *
 * Triangles fully outside any frustum plane are rejected as clipped;
 * triangles straddling only the near plane are polygon-clipped against
 * it (up to two output triangles) so rasterization never sees w <= 0;
 * everything else rasterizes with scissoring, as edge-function
 * rasterizers do in place of geometric side-plane clipping.
 */

#ifndef WC3D_GEOM_CLIPCULL_HH
#define WC3D_GEOM_CLIPCULL_HH

#include <cstdint>
#include <vector>

#include "geom/types.hh"

namespace wc3d::geom {

/** What happened to a triangle in the clip/cull stage. */
enum class TriangleFate : std::uint8_t
{
    Clipped,   ///< rejected: fully outside the view frustum
    Culled,    ///< rejected: facing away (or zero area)
    Traversed, ///< forwarded to rasterization
};

/** Face-culling configuration. */
enum class CullMode : std::uint8_t
{
    None,
    Back,
    Front,
};

/** Statistics for Table VII / Figure 6. */
struct ClipCullStats
{
    std::uint64_t input = 0;
    std::uint64_t clipped = 0;
    std::uint64_t culled = 0;
    std::uint64_t traversed = 0;

    double pctClipped() const
    { return input ? 100.0 * clipped / input : 0.0; }
    double pctCulled() const
    { return input ? 100.0 * culled / input : 0.0; }
    double pctTraversed() const
    { return input ? 100.0 * traversed / input : 0.0; }
};

/** The clip + cull stage. */
class ClipCull
{
  public:
    /**
     * Process one triangle.
     *
     * @param verts      the three transformed vertices
     * @param cull_mode  face culling mode (counter-clockwise = front)
     * @param out        on Traversed: 1 or 2 clip-space triangles whose
     *                   vertices all have w > 0 near-plane-wise
     * @return the triangle's fate (stats updated)
     */
    TriangleFate process(const TransformedVertex verts[3],
                         CullMode cull_mode,
                         std::vector<std::array<TransformedVertex, 3>> &out);

    const ClipCullStats &stats() const { return _stats; }
    void resetStats() { _stats = ClipCullStats(); }

  private:
    ClipCullStats _stats;
};

/**
 * Signed area of the projected triangle in NDC (positive =
 * counter-clockwise with y up). Exposed for tests.
 */
float projectedSignedArea(const Vec4 &a, const Vec4 &b, const Vec4 &c);

} // namespace wc3d::geom

#endif // WC3D_GEOM_CLIPCULL_HH
