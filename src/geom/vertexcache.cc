#include "geom/vertexcache.hh"

#include "common/log.hh"

namespace wc3d::geom {

VertexCache::VertexCache(int entries)
    : _slots(static_cast<std::size_t>(entries))
{
    WC3D_ASSERT(entries > 0);
}

int
VertexCache::lookup(std::uint32_t index)
{
    for (std::size_t i = 0; i < _slots.size(); ++i) {
        if (_slots[i].valid && _slots[i].index == index) {
            ++_hits;
            return static_cast<int>(i);
        }
    }
    ++_misses;
    return -1;
}

int
VertexCache::insert(std::uint32_t index)
{
    int slot = _nextVictim;
    _slots[static_cast<std::size_t>(slot)] = {true, index};
    _nextVictim = (_nextVictim + 1) % static_cast<int>(_slots.size());
    return slot;
}

void
VertexCache::invalidate()
{
    for (auto &s : _slots)
        s.valid = false;
    _nextVictim = 0;
}

double
VertexCache::hitRate() const
{
    std::uint64_t total = _hits + _misses;
    return total ? static_cast<double>(_hits) / static_cast<double>(total)
                 : 0.0;
}

void
VertexCache::resetStats()
{
    _hits = 0;
    _misses = 0;
}

} // namespace wc3d::geom
