#include "stats/registry.hh"

#include "common/strutil.hh"

namespace wc3d::stats {

namespace {
const Distribution kEmptyDistribution;
} // namespace

Counter &
Registry::counter(const std::string &name)
{
    auto it = _counters.find(name);
    if (it == _counters.end()) {
        it = _counters.emplace(name, Counter()).first;
        _counterOrder.push_back(name);
    }
    return it->second;
}

Distribution &
Registry::distribution(const std::string &name)
{
    auto it = _dists.find(name);
    if (it == _dists.end()) {
        it = _dists.emplace(name, Distribution()).first;
        _distOrder.push_back(name);
    }
    return it->second;
}

bool
Registry::hasCounter(const std::string &name) const
{
    return _counters.count(name) != 0;
}

bool
Registry::hasDistribution(const std::string &name) const
{
    return _dists.count(name) != 0;
}

std::uint64_t
Registry::counterValue(const std::string &name) const
{
    auto it = _counters.find(name);
    return it != _counters.end() ? it->second.value() : 0;
}

const Distribution &
Registry::distributionValue(const std::string &name) const
{
    auto it = _dists.find(name);
    return it != _dists.end() ? it->second : kEmptyDistribution;
}

void
Registry::resetAll()
{
    for (auto &kv : _counters)
        kv.second.reset();
    for (auto &kv : _dists)
        kv.second.reset();
}

std::string
Registry::dump() const
{
    std::string out;
    for (const auto &name : _counterOrder) {
        out += format("%-40s %llu\n", name.c_str(),
            static_cast<unsigned long long>(counterValue(name)));
    }
    for (const auto &name : _distOrder) {
        const Distribution &d = distributionValue(name);
        out += format("%-40s mean=%.3f n=%llu min=%.3f max=%.3f\n",
                      name.c_str(), d.mean(),
                      static_cast<unsigned long long>(d.count()),
                      d.min(), d.max());
    }
    return out;
}

} // namespace wc3d::stats
