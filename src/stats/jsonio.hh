/**
 * @file
 * JSON serialization of the statistics types: the run metrics manifest
 * (core/runmeta) dumps every registered counter and distribution
 * through these converters, giving benches and CI one machine-readable
 * artifact per run.
 */

#ifndef WC3D_STATS_JSONIO_HH
#define WC3D_STATS_JSONIO_HH

#include "common/json.hh"
#include "stats/distribution.hh"
#include "stats/registry.hh"
#include "stats/series.hh"

namespace wc3d::stats {

/** {"count", "sum", "mean", "stddev", "min", "max"} (0s when empty). */
json::Value toJson(const Distribution &d);

/**
 * {"counters": {name: value}, "distributions": {name: {...}}} with
 * every registered name present, in registration order.
 */
json::Value toJson(const Registry &r);

/**
 * {"frames": N, "series": {name: {summary...}}} — per-frame series are
 * summarized (full frame vectors live in the CSV exports).
 */
json::Value toJson(const FrameSeries &s);

} // namespace wc3d::stats

#endif // WC3D_STATS_JSONIO_HH
