/**
 * @file
 * Streaming distribution statistics (count/sum/min/max/mean/variance)
 * plus a simple linear histogram. Used for per-frame and per-event
 * quantities such as triangle sizes and batch sizes.
 */

#ifndef WC3D_STATS_DISTRIBUTION_HH
#define WC3D_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace wc3d::stats {

/** Welford-style streaming distribution. */
class Distribution
{
  public:
    /** Record one sample. */
    void sample(double v);

    /** Record @p n identical samples (weighted sample). */
    void sampleN(double v, std::uint64_t n);

    /** Merge another distribution into this one. */
    void merge(const Distribution &o);

    /** Reset to the empty state. */
    void reset();

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double min() const;
    double max() const;

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _sumSq = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/** Fixed-range linear histogram with underflow/overflow buckets. */
class Histogram
{
  public:
    /** Build a histogram over [lo, hi) with @p buckets equal bins. */
    Histogram(double lo, double hi, int buckets);

    /** Record one sample. */
    void sample(double v);

    int buckets() const { return static_cast<int>(_bins.size()); }
    std::uint64_t binCount(int i) const { return _bins.at(i); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t total() const { return _total; }

    /** Lower edge of bin @p i. */
    double binLow(int i) const;

    /** Render a one-line-per-bucket ASCII view. */
    std::string toString() const;

  private:
    double _lo;
    double _hi;
    std::vector<std::uint64_t> _bins;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

} // namespace wc3d::stats

#endif // WC3D_STATS_DISTRIBUTION_HH
