/**
 * @file
 * Per-frame time series recorder. Reproduces the paper's figure data
 * (batches/frame, index BW/frame, state calls/frame, hit rates, ...):
 * each named series holds one double per frame, exported as CSV.
 */

#ifndef WC3D_STATS_SERIES_HH
#define WC3D_STATS_SERIES_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "stats/distribution.hh"

namespace wc3d::stats {

/** A set of named per-frame series of equal (growing) length. */
class FrameSeries
{
  public:
    /** Append one sample to series @p name for the current frame. */
    void record(const std::string &name, double value);

    /**
     * Advance to the next frame. Series not recorded this frame are
     * padded with 0 so all series stay aligned.
     */
    void endFrame();

    /** Number of completed frames. */
    int frames() const { return _frames; }

    /** @return the samples of @p name (empty when unknown). */
    const std::vector<double> &series(const std::string &name) const;

    /** All series names, in first-recorded order. */
    const std::vector<std::string> &names() const { return _order; }

    /** Summary statistics over the completed frames of @p name. */
    Distribution summary(const std::string &name) const;

    /**
     * Write CSV with a "frame" column followed by one column per series.
     * @return true on success.
     */
    bool writeCsv(const std::string &path) const;

    /** Render the CSV to a string (used by tests and stdout dumps). */
    std::string toCsv() const;

  private:
    int _frames = 0;
    std::unordered_map<std::string, std::vector<double>> _series;
    std::unordered_map<std::string, double> _pending;
    std::vector<std::string> _order;
};

} // namespace wc3d::stats

#endif // WC3D_STATS_SERIES_HH
