#include "stats/table.hh"

#include <algorithm>

#include "common/log.hh"

namespace wc3d::stats {

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    WC3D_ASSERT(!_headers.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    WC3D_ASSERT(cells.size() == _headers.size());
    _rows.push_back(std::move(cells));
}

const std::string &
Table::cell(int row, int col) const
{
    return _rows.at(static_cast<std::size_t>(row))
                .at(static_cast<std::size_t>(col));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::size_t pad = widths[c] - row[c].size();
            if (c == 0) {
                line += row[c] + std::string(pad, ' ');
            } else {
                line += std::string(pad, ' ') + row[c];
            }
            if (c + 1 < row.size())
                line += "  ";
        }
        return line + "\n";
    };

    std::string out = emit(_headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + "\n";
    for (const auto &row : _rows)
        out += emit(row);
    return out;
}

std::string
Table::toMarkdown() const
{
    auto emit = [](const std::vector<std::string> &row) {
        std::string line = "|";
        for (const auto &cell : row)
            line += " " + cell + " |";
        return line + "\n";
    };
    std::string out = emit(_headers);
    out += "|";
    for (std::size_t c = 0; c < _headers.size(); ++c)
        out += "---|";
    out += "\n";
    for (const auto &row : _rows)
        out += emit(row);
    return out;
}

std::string
Table::toCsv() const
{
    auto emit = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                line += ",";
            line += row[c];
        }
        return line + "\n";
    };
    std::string out = emit(_headers);
    for (const auto &row : _rows)
        out += emit(row);
    return out;
}

} // namespace wc3d::stats
