#include "stats/jsonio.hh"

namespace wc3d::stats {

json::Value
toJson(const Distribution &d)
{
    json::Value out = json::Value::object();
    out.set("count", json::Value::number(d.count()));
    out.set("sum", json::Value::number(d.sum()));
    out.set("mean", json::Value::number(d.mean()));
    out.set("stddev", json::Value::number(d.stddev()));
    // min/max are +/-inf when empty; JSON has no inf literal.
    out.set("min", json::Value::number(d.count() ? d.min() : 0.0));
    out.set("max", json::Value::number(d.count() ? d.max() : 0.0));
    return out;
}

json::Value
toJson(const Registry &r)
{
    json::Value counters = json::Value::object();
    for (const auto &name : r.counterNames())
        counters.set(name, json::Value::number(r.counterValue(name)));
    json::Value dists = json::Value::object();
    for (const auto &name : r.distributionNames())
        dists.set(name, toJson(r.distributionValue(name)));
    json::Value out = json::Value::object();
    out.set("counters", std::move(counters));
    out.set("distributions", std::move(dists));
    return out;
}

json::Value
toJson(const FrameSeries &s)
{
    json::Value series = json::Value::object();
    for (const auto &name : s.names())
        series.set(name, toJson(s.summary(name)));
    json::Value out = json::Value::object();
    out.set("frames", json::Value::number(
                          static_cast<std::int64_t>(s.frames())));
    out.set("series", std::move(series));
    return out;
}

} // namespace wc3d::stats
