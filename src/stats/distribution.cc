#include "stats/distribution.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "common/strutil.hh"

namespace wc3d::stats {

void
Distribution::sample(double v)
{
    sampleN(v, 1);
}

void
Distribution::sampleN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    _count += n;
    _sum += v * static_cast<double>(n);
    _sumSq += v * v * static_cast<double>(n);
    _min = std::min(_min, v);
    _max = std::max(_max, v);
}

void
Distribution::merge(const Distribution &o)
{
    _count += o._count;
    _sum += o._sum;
    _sumSq += o._sumSq;
    _min = std::min(_min, o._min);
    _max = std::max(_max, o._max);
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::min() const
{
    return _count ? _min : 0.0;
}

double
Distribution::max() const
{
    return _count ? _max : 0.0;
}

double
Distribution::mean() const
{
    return _count ? _sum / static_cast<double>(_count) : 0.0;
}

double
Distribution::variance() const
{
    if (_count < 2)
        return 0.0;
    double n = static_cast<double>(_count);
    double m = _sum / n;
    double var = _sumSq / n - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, int buckets)
    : _lo(lo), _hi(hi), _bins(static_cast<std::size_t>(buckets), 0)
{
    WC3D_ASSERT(hi > lo && buckets > 0);
}

void
Histogram::sample(double v)
{
    ++_total;
    if (v < _lo) {
        ++_underflow;
    } else if (v >= _hi) {
        ++_overflow;
    } else {
        auto idx = static_cast<std::size_t>(
            (v - _lo) / (_hi - _lo) * static_cast<double>(_bins.size()));
        if (idx >= _bins.size())
            idx = _bins.size() - 1;
        ++_bins[idx];
    }
}

double
Histogram::binLow(int i) const
{
    return _lo + (_hi - _lo) * static_cast<double>(i) /
           static_cast<double>(_bins.size());
}

std::string
Histogram::toString() const
{
    std::string out;
    for (int i = 0; i < buckets(); ++i) {
        out += format("[%10.2f, %10.2f): %llu\n", binLow(i), binLow(i + 1),
                      static_cast<unsigned long long>(_bins[i]));
    }
    out += format("underflow: %llu overflow: %llu\n",
                  static_cast<unsigned long long>(_underflow),
                  static_cast<unsigned long long>(_overflow));
    return out;
}

} // namespace wc3d::stats
