/**
 * @file
 * ASCII table formatter. Every bench prints its paper table through this
 * so the reproduction output is uniform and diffable.
 */

#ifndef WC3D_STATS_TABLE_HH
#define WC3D_STATS_TABLE_HH

#include <string>
#include <vector>

namespace wc3d::stats {

/** A simple left/right aligned text table with a header row. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    int rows() const { return static_cast<int>(_rows.size()); }

    /** Cell accessor (row, column). */
    const std::string &cell(int row, int col) const;

    /** Render with aligned columns; first column left, rest right. */
    std::string toString() const;

    /** Render as GitHub-flavoured Markdown. */
    std::string toMarkdown() const;

    /** Render as CSV. */
    std::string toCsv() const;

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace wc3d::stats

#endif // WC3D_STATS_TABLE_HH
