/**
 * @file
 * Named statistic registry. Pipeline stages register counters and
 * distributions here; analyzers and benches read them back by name.
 * Insertion order is preserved for stable report output.
 */

#ifndef WC3D_STATS_REGISTRY_HH
#define WC3D_STATS_REGISTRY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "stats/distribution.hh"

namespace wc3d::stats {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    void reset() { _value = 0; }
    std::uint64_t value() const { return _value; }

  private:
    std::uint64_t _value = 0;
};

/**
 * Registry of named counters and distributions.
 *
 * Names are hierarchical by convention ("raster.quads", "cache.z.hits").
 * Lookups create the statistic on first use so stages can stay decoupled
 * from report code.
 */
class Registry
{
  public:
    /** Get (creating if needed) the counter called @p name. */
    Counter &counter(const std::string &name);

    /** Get (creating if needed) the distribution called @p name. */
    Distribution &distribution(const std::string &name);

    /** @return true when a counter of that name exists. */
    bool hasCounter(const std::string &name) const;

    /** @return true when a distribution of that name exists. */
    bool hasDistribution(const std::string &name) const;

    /** Read a counter value; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Read a distribution; empty Distribution when absent. */
    const Distribution &distributionValue(const std::string &name) const;

    /** All counter names in registration order. */
    const std::vector<std::string> &counterNames() const
    { return _counterOrder; }

    /** All distribution names in registration order. */
    const std::vector<std::string> &distributionNames() const
    { return _distOrder; }

    /** Zero every counter and distribution (keeps registrations). */
    void resetAll();

    /** Dump "name value" lines, counters then distribution means. */
    std::string dump() const;

  private:
    std::unordered_map<std::string, Counter> _counters;
    std::vector<std::string> _counterOrder;
    std::unordered_map<std::string, Distribution> _dists;
    std::vector<std::string> _distOrder;
};

} // namespace wc3d::stats

#endif // WC3D_STATS_REGISTRY_HH
