#include "stats/series.hh"

#include <charconv>
#include <cstdio>

#include "common/strutil.hh"

namespace wc3d::stats {

namespace {
const std::vector<double> kEmpty;

/** Shortest decimal form that parses back to exactly @p v (the CSV is
 *  also the run-cache storage format, so emission must be lossless). */
std::string
exactDouble(double v)
{
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}
} // namespace

void
FrameSeries::record(const std::string &name, double value)
{
    if (_series.find(name) == _series.end()) {
        // Backfill zeros for frames that happened before this series
        // first appeared so columns stay aligned.
        _series.emplace(name,
                        std::vector<double>(static_cast<std::size_t>(_frames),
                                            0.0));
        _order.push_back(name);
    }
    _pending[name] += value;
}

void
FrameSeries::endFrame()
{
    for (const auto &name : _order) {
        auto it = _pending.find(name);
        _series[name].push_back(it != _pending.end() ? it->second : 0.0);
    }
    _pending.clear();
    ++_frames;
}

const std::vector<double> &
FrameSeries::series(const std::string &name) const
{
    auto it = _series.find(name);
    return it != _series.end() ? it->second : kEmpty;
}

Distribution
FrameSeries::summary(const std::string &name) const
{
    Distribution d;
    for (double v : series(name))
        d.sample(v);
    return d;
}

std::string
FrameSeries::toCsv() const
{
    std::string out = "frame";
    for (const auto &name : _order)
        out += "," + name;
    out += "\n";
    for (int f = 0; f < _frames; ++f) {
        out += format("%d", f);
        for (const auto &name : _order) {
            const auto &s = _series.at(name);
            out += ',';
            out += exactDouble(f < static_cast<int>(s.size()) ? s[f]
                                                              : 0.0);
        }
        out += "\n";
    }
    return out;
}

bool
FrameSeries::writeCsv(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::string csv = toCsv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
    return true;
}

} // namespace wc3d::stats
