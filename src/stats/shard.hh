/**
 * @file
 * Per-worker counter shards for deterministic parallel statistics.
 *
 * The simulator's parallel stages follow one discipline: workers only
 * ever write to the shard indexed by their ThreadPool slot, and shards
 * are reduced on the submitting thread *in slot order* (or, for
 * per-item accounting, in item submission order) once the parallel
 * region completed. Integer counters therefore sum to exactly the
 * values the sequential path produces, independent of thread count and
 * scheduling — the foundation any sharded backend must preserve.
 */

#ifndef WC3D_STATS_SHARD_HH
#define WC3D_STATS_SHARD_HH

#include <vector>

#include "common/threadpool.hh"

namespace wc3d::stats {

/**
 * A fixed set of per-worker shards of some accumulator type T.
 *
 * Sized for a pool (one shard per worker slot). shard(slot) hands a
 * worker its private accumulator; reduce() folds the shards in slot
 * order on the caller's thread after the parallel region.
 */
template <typename T>
class ShardSet
{
  public:
    /** One shard per worker slot of @p pool. */
    explicit ShardSet(const ThreadPool &pool)
        : _shards(static_cast<std::size_t>(pool.threads()))
    {
    }

    explicit ShardSet(int shards)
        : _shards(static_cast<std::size_t>(shards < 1 ? 1 : shards))
    {
    }

    int size() const { return static_cast<int>(_shards.size()); }

    /** The shard owned by worker @p slot. */
    T &shard(int slot) { return _shards[static_cast<std::size_t>(slot)]; }
    const T &shard(int slot) const
    {
        return _shards[static_cast<std::size_t>(slot)];
    }

    /** The calling thread's shard (by its pool slot). */
    T &mine() { return shard(ThreadPool::currentSlot()); }

    /**
     * Fold all shards in slot order: fold(accumulator, shard) is called
     * for slots 0, 1, ... in sequence on the calling thread.
     */
    template <typename Acc, typename Fold>
    Acc
    reduce(Acc acc, Fold fold) const
    {
        for (const T &s : _shards)
            fold(acc, s);
        return acc;
    }

  private:
    std::vector<T> _shards;
};

} // namespace wc3d::stats

#endif // WC3D_STATS_SHARD_HH
