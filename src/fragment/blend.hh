/**
 * @file
 * Colour blending and write mask. "Blending is always active in the
 * color stage for the three simulated benchmarks"; Doom3/Quake4 draw
 * stencil-shadow geometry "with the color write mask set to false"
 * (paper Section III.C/D) — both states are modelled here.
 */

#ifndef WC3D_FRAGMENT_BLEND_HH
#define WC3D_FRAGMENT_BLEND_HH

#include <cstdint>

#include "common/image.hh"
#include "common/vecmath.hh"

namespace wc3d::frag {

/** Blend factors (OpenGL subset used by the workloads). */
enum class BlendFactor : std::uint8_t
{
    Zero,
    One,
    SrcColor,
    InvSrcColor,
    SrcAlpha,
    InvSrcAlpha,
    DstColor,
    InvDstColor,
    DstAlpha,
    InvDstAlpha,
};

/** Blend equations. */
enum class BlendOp : std::uint8_t
{
    Add,
    Subtract,    ///< src*sf - dst*df
    RevSubtract, ///< dst*df - src*sf
    Min,
    Max,
};

/** Colour-stage render state. */
struct BlendState
{
    bool enabled = false;
    BlendFactor srcFactor = BlendFactor::One;
    BlendFactor dstFactor = BlendFactor::Zero;
    BlendOp op = BlendOp::Add;
    bool colorWriteMask = true; ///< false: fragments never update colour
};

/** Evaluate a blend factor for (src, dst). */
Vec4 blendFactorValue(BlendFactor f, const Vec4 &src, const Vec4 &dst);

/** Blend @p src over @p dst under @p state (no clamping of inputs;
 *  result is clamped to [0,1]). */
Vec4 blendColors(const BlendState &state, const Vec4 &src,
                 const Vec4 &dst);

/** Convert a float colour to the packed RGBA8 framebuffer word. */
std::uint32_t packColor(const Vec4 &c);

/** Convert a packed RGBA8 framebuffer word to float colour. */
Vec4 unpackColor(std::uint32_t word);

} // namespace wc3d::frag

#endif // WC3D_FRAGMENT_BLEND_HH
