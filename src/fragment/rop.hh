/**
 * @file
 * Colour raster operations: the final stage that applies the colour
 * write mask and blending to a quad of shaded fragments. Tracks the
 * quantities behind the paper's Table IX (quads removed by colour mask
 * vs blended) and Table XI (blending overdraw).
 */

#ifndef WC3D_FRAGMENT_ROP_HH
#define WC3D_FRAGMENT_ROP_HH

#include "fragment/blend.hh"
#include "fragment/framebuffer.hh"

namespace wc3d::frag {

/** Colour-stage statistics. */
struct ColorStats
{
    std::uint64_t quadsIn = 0;
    std::uint64_t quadsMasked = 0;  ///< removed by colour write mask
    std::uint64_t quadsBlended = 0; ///< updated the colour buffer
    std::uint64_t fragmentsBlended = 0;
};

/** The colour write/blend unit operating on a colour CachedSurface. */
class ColorUnit
{
  public:
    explicit ColorUnit(CachedSurface *surface) : _surface(surface) {}

    /**
     * Write a quad of shaded colours.
     *
     * @param state     blend state (including the colour write mask)
     * @param x,y       quad top-left pixel
     * @param colors    per-lane shaded colour
     * @param live_mask lanes that survived all tests
     * @return true when the colour buffer was updated
     */
    bool writeQuad(const BlendState &state, int x, int y,
                   const Vec4 colors[4], std::uint8_t live_mask);

    const ColorStats &stats() const { return _stats; }
    void resetStats() { _stats = ColorStats(); }

    /** Fold a worker-private unit's statistics into this one's. */
    void
    mergeStats(const ColorStats &s)
    {
        _stats.quadsIn += s.quadsIn;
        _stats.quadsMasked += s.quadsMasked;
        _stats.quadsBlended += s.quadsBlended;
        _stats.fragmentsBlended += s.fragmentsBlended;
    }

    /** Defer surface-cache accesses to @p sink (see ZStencilUnit). */
    void setAccessSink(SurfaceAccessSink *sink) { _sink = sink; }

  private:
    CachedSurface *_surface;
    SurfaceAccessSink *_sink = nullptr;
    ColorStats _stats;
};

} // namespace wc3d::frag

#endif // WC3D_FRAGMENT_ROP_HH
