/**
 * @file
 * Framebuffer surfaces (depth/stencil and colour) backed by the cached,
 * compressed memory system the paper describes for ATTILA: "The z and
 * stencil cache implements a fast clear and z compression algorithm to
 * save BW. ... The color cache implements fast clear and a very simple
 * compression algorithm that only works for blocks of pixels with the
 * same color."
 *
 * A surface is an array of 32-bit words divided into 8x8-pixel blocks
 * (256 bytes — one cache line, Table XIV geometry). Accesses go through
 * a per-surface cache at quad granularity; misses and writebacks charge
 * the memory controller according to the block's directory state
 * (Cleared: free, Compressed: half a line, Uncompressed: full line).
 */

#ifndef WC3D_FRAGMENT_FRAMEBUFFER_HH
#define WC3D_FRAGMENT_FRAMEBUFFER_HH

#include <cstdint>
#include <vector>

#include "common/image.hh"
#include "memory/blockstate.hh"
#include "memory/cache.hh"
#include "memory/controller.hh"

namespace wc3d::frag {

/** Pixel footprint of one surface block / cache line. */
constexpr int kBlockDim = 8;
constexpr int kBlockPixels = kBlockDim * kBlockDim;
constexpr int kBlockBytes = kBlockPixels * 4;

/** Cache geometry for a surface (paper Table XIV: "64w x 256B"). */
struct SurfaceCacheConfig
{
    int ways = 64;
    int sets = 1;
    int lineBytes = kBlockBytes;
};

/** Which compression rule a surface uses on writeback. */
enum class SurfaceKind
{
    DepthStencil, ///< plane compression (2:1 when planar)
    Color,        ///< uniform-colour compression (2:1 when uniform)
};

/**
 * Deferral hook for surface-cache accesses. The cache model and the
 * memory controller behind a CachedSurface are order-sensitive shared
 * state, so tile-parallel workers must not touch them; a unit with a
 * sink installed performs its word reads/writes directly (the pixels
 * are tile-exclusive) but reports each would-be accessQuad /
 * accessQuadNoFetch here instead. The submitting thread later replays
 * the logged accesses into the real surface in reconstructed
 * submission order (see DESIGN.md "Tile-parallel pipeline").
 */
class SurfaceAccessSink
{
  public:
    virtual ~SurfaceAccessSink() = default;

    /**
     * One deferred quad access at (@p x, @p y).
     * @param is_write  the access dirties the line
     * @param no_fetch  write-install semantics (accessQuadNoFetch)
     */
    virtual void surfaceAccess(int x, int y, bool is_write,
                               bool no_fetch) = 0;
};

/**
 * One cached surface of 32-bit words.
 *
 * For depth/stencil the word layout is depth[31:8] | stencil[7:0];
 * for colour it is packed RGBA8 (A in the top byte).
 */
class CachedSurface
{
  public:
    /**
     * @param kind    compression behaviour
     * @param client  memory-traffic client to charge
     * @param width   surface width in pixels
     * @param height  surface height in pixels
     * @param config  cache geometry
     * @param memory  traffic accountant (may be null for tests)
     */
    CachedSurface(SurfaceKind kind, memsys::Client client, int width,
                  int height, const SurfaceCacheConfig &config,
                  memsys::MemoryController *memory);

    int width() const { return _width; }
    int height() const { return _height; }

    /**
     * Fast clear: set every word to @p value, mark all blocks Cleared
     * and drop cache residency. Costs no GDDR traffic.
     */
    void fastClear(std::uint32_t value);

    /** Raw word access (no cache accounting; for tests/readback). */
    std::uint32_t word(int x, int y) const;
    void setWord(int x, int y, std::uint32_t v);

    /**
     * Cache-accounted access covering the quad whose top-left pixel is
     * (@p x, @p y). Call once per quad before reading (and again with
     * write semantics folded in via @p is_write when the quad writes).
     */
    void accessQuad(int x, int y, bool is_write);

    /**
     * Write access that never reads the block from memory (used by the
     * min/max-HZ early-accept path, which knows the depth test passes
     * and overwrites without a read-modify-write). Misses install the
     * line dirty with a zero-byte fill; victim writebacks still pay.
     */
    void accessQuadNoFetch(int x, int y);

    /**
     * Write back all dirty cache lines (end of frame). Writeback size
     * honours compressibility; directory states are updated.
     */
    void flushDirty();

    /**
     * Scanout/readback traffic for the whole surface at stored size
     * (used by the DAC), charged to @p client.
     */
    void chargeFullReadback(memsys::Client client);

    const memsys::CacheStats &cacheStats() const { return _cache.stats(); }
    const memsys::CacheModel &cache() const { return _cache; }
    const memsys::BlockStateDirectory &directory() const { return _dir; }

    void resetCacheStats() { _cache.resetStats(); }

    /** Convert a colour surface to an Image (for PPM dumps / tests). */
    Image toImage() const;

  private:
    std::size_t wordIndex(int x, int y) const;
    std::size_t blockIndex(int x, int y) const;
    std::uint64_t blockAddress(std::size_t block) const;

    /** Bytes needed to read the block in its current stored state. */
    std::uint64_t blockFillBytes(std::size_t block) const;

    /** Analyze current contents; returns stored size and updates dir. */
    std::uint64_t compressAndStore(std::size_t block);

    SurfaceKind _kind;
    memsys::Client _client;
    int _width;
    int _height;
    int _blocksX;
    int _blocksY;
    std::vector<std::uint32_t> _words;
    memsys::BlockStateDirectory _dir;
    memsys::CacheModel _cache;
    memsys::MemoryController *_memory;
    std::uint64_t _base;
};

} // namespace wc3d::frag

#endif // WC3D_FRAGMENT_FRAMEBUFFER_HH
