#include "fragment/zstencil.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/vecmath.hh"

namespace wc3d::frag {

bool
compareFunc(CompareFunc func, std::uint32_t value, std::uint32_t ref)
{
    switch (func) {
      case CompareFunc::Never:
        return false;
      case CompareFunc::Less:
        return value < ref;
      case CompareFunc::Equal:
        return value == ref;
      case CompareFunc::LEqual:
        return value <= ref;
      case CompareFunc::Greater:
        return value > ref;
      case CompareFunc::NotEqual:
        return value != ref;
      case CompareFunc::GEqual:
        return value >= ref;
      case CompareFunc::Always:
        return true;
    }
    return false;
}

std::uint8_t
applyStencilOp(StencilOp op, std::uint8_t current, std::uint8_t ref)
{
    switch (op) {
      case StencilOp::Keep:
        return current;
      case StencilOp::Zero:
        return 0;
      case StencilOp::Replace:
        return ref;
      case StencilOp::Incr:
        return current == 0xff ? 0xff
                               : static_cast<std::uint8_t>(current + 1);
      case StencilOp::IncrWrap:
        return static_cast<std::uint8_t>(current + 1);
      case StencilOp::Decr:
        return current == 0 ? 0 : static_cast<std::uint8_t>(current - 1);
      case StencilOp::DecrWrap:
        return static_cast<std::uint8_t>(current - 1);
      case StencilOp::Invert:
        return static_cast<std::uint8_t>(~current);
    }
    return current;
}

std::uint32_t
packDepthStencil(float depth, std::uint8_t stencil)
{
    // Quantise in double: 16777215 + 0.5 is not representable in float
    // and would round up past the 24-bit range.
    double clamped = clampf(depth, 0.0f, 1.0f);
    auto d = static_cast<std::uint32_t>(clamped * 16777215.0 + 0.5);
    if (d > 0xffffffu)
        d = 0xffffffu;
    return (d << 8) | stencil;
}

float
unpackDepth(std::uint32_t word)
{
    return static_cast<float>(word >> 8) / 16777215.0f;
}

std::uint8_t
unpackStencil(std::uint32_t word)
{
    return static_cast<std::uint8_t>(word & 0xff);
}

bool
DepthStencilState::faceWritesStencil(const StencilFace &face)
{
    return face.writeMask != 0 &&
           (face.sfail != StencilOp::Keep ||
            face.zfail != StencilOp::Keep ||
            face.zpass != StencilOp::Keep);
}

bool
DepthStencilState::readOnly() const
{
    bool z_writes = depthTest && depthWrite;
    bool s_writes = stencilTest &&
                    (faceWritesStencil(front) || faceWritesStencil(back));
    return !z_writes && !s_writes;
}

bool
ZStencilUnit::testQuad(const DepthStencilState &state, bool back_face,
                       int x, int y, const float z[4],
                       std::uint8_t &live_mask, float &quad_z_max)
{
    float quad_z_min = 0.0f;
    return testQuadEx(state, back_face, x, y, z, live_mask, quad_z_min,
                      quad_z_max);
}

bool
ZStencilUnit::testQuadEx(const DepthStencilState &state, bool back_face,
                         int x, int y, const float z[4],
                         std::uint8_t &live_mask, float &quad_z_min,
                         float &quad_z_max)
{
    ++_stats.quadsIn;
    if (live_mask == 0xf)
        ++_stats.fullQuadsIn;

    const StencilFace &face = back_face ? state.back : state.front;

    bool will_write =
        (state.depthTest && state.depthWrite) ||
        (state.stencilTest && DepthStencilState::faceWritesStencil(face));
    if (_sink)
        _sink->surfaceAccess(x, y, will_write, /*no_fetch=*/false);
    else
        _surface->accessQuad(x, y, will_write);

    static const int offs[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
    std::uint8_t passed = 0;
    float max_stored = 0.0f;
    float min_stored = 1.0f;
    for (int lane = 0; lane < 4; ++lane) {
        int px = x + offs[lane][0];
        int py = y + offs[lane][1];
        bool in_bounds = px < _surface->width() && py < _surface->height();
        if (!((live_mask >> lane) & 1) || !in_bounds)
            continue;
        ++_stats.fragmentsIn;

        std::uint32_t stored = _surface->word(px, py);
        float stored_z = unpackDepth(stored);
        std::uint8_t stored_s = unpackStencil(stored);

        bool stencil_pass = true;
        if (state.stencilTest) {
            stencil_pass = compareFunc(
                face.func,
                static_cast<std::uint32_t>(face.ref & face.readMask),
                static_cast<std::uint32_t>(stored_s & face.readMask));
        }

        bool depth_pass = true;
        if (state.depthTest && stencil_pass) {
            std::uint32_t frag_d =
                packDepthStencil(z[lane], 0) >> 8;
            std::uint32_t stored_d = stored >> 8;
            depth_pass = compareFunc(state.depthFunc, frag_d, stored_d);
        }

        float new_z = stored_z;
        std::uint8_t new_s = stored_s;
        if (state.stencilTest) {
            StencilOp op = !stencil_pass ? face.sfail
                           : !depth_pass ? face.zfail
                                         : face.zpass;
            std::uint8_t updated = applyStencilOp(op, stored_s, face.ref);
            new_s = static_cast<std::uint8_t>(
                (stored_s & ~face.writeMask) | (updated & face.writeMask));
        }
        if (stencil_pass && depth_pass && state.depthTest &&
            state.depthWrite) {
            new_z = clampf(z[lane], 0.0f, 1.0f);
        }
        if (new_z != stored_z || new_s != stored_s)
            _surface->setWord(px, py, packDepthStencil(new_z, new_s));

        max_stored = std::max(max_stored, new_z);
        min_stored = std::min(min_stored, new_z);
        if (stencil_pass && depth_pass) {
            passed |= static_cast<std::uint8_t>(1u << lane);
            ++_stats.fragmentsPassed;
        }
    }

    // HZ feedback needs the quad's stored range including untouched
    // lanes.
    for (int lane = 0; lane < 4; ++lane) {
        int px = x + offs[lane][0];
        int py = y + offs[lane][1];
        if (px < _surface->width() && py < _surface->height() &&
            (!((live_mask >> lane) & 1))) {
            float stored = unpackDepth(_surface->word(px, py));
            max_stored = std::max(max_stored, stored);
            min_stored = std::min(min_stored, stored);
        }
    }
    quad_z_max = max_stored;
    quad_z_min = min_stored;

    live_mask = passed;
    if (passed == 0) {
        ++_stats.quadsRemoved;
        return false;
    }
    return true;
}

std::pair<float, float>
ZStencilUnit::acceptQuad(const DepthStencilState &state, int x, int y,
                         const float z[4], std::uint8_t live_mask)
{
    WC3D_ASSERT(!state.stencilTest &&
                (state.depthFunc == CompareFunc::Less ||
                 state.depthFunc == CompareFunc::LEqual));
    ++_stats.quadsIn;
    if (live_mask == 0xf)
        ++_stats.fullQuadsIn;

    static const int offs[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
    bool writes = state.depthTest && state.depthWrite;
    if (writes) {
        if (_sink)
            _sink->surfaceAccess(x, y, /*is_write=*/true, /*no_fetch=*/true);
        else
            _surface->accessQuadNoFetch(x, y);
    }

    float max_stored = 0.0f;
    float min_stored = 1.0f;
    for (int lane = 0; lane < 4; ++lane) {
        int px = x + offs[lane][0];
        int py = y + offs[lane][1];
        if (px >= _surface->width() || py >= _surface->height())
            continue;
        bool live = (live_mask >> lane) & 1;
        if (live) {
            ++_stats.fragmentsIn;
            ++_stats.fragmentsPassed;
        }
        float stored;
        if (live && writes) {
            stored = clampf(z[lane], 0.0f, 1.0f);
            std::uint32_t word = _surface->word(px, py);
            _surface->setWord(
                px, py, packDepthStencil(stored, unpackStencil(word)));
        } else {
            stored = unpackDepth(_surface->word(px, py));
        }
        max_stored = std::max(max_stored, stored);
        min_stored = std::min(min_stored, stored);
    }
    return {min_stored, max_stored};
}

} // namespace wc3d::frag
