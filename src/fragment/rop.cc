#include "fragment/rop.hh"

namespace wc3d::frag {

bool
ColorUnit::writeQuad(const BlendState &state, int x, int y,
                     const Vec4 colors[4], std::uint8_t live_mask)
{
    ++_stats.quadsIn;
    if (live_mask == 0)
        return false;
    if (!state.colorWriteMask) {
        // The quad reached the colour stage but the write mask discards
        // it (the stencil-shadow pattern in Doom3/Quake4).
        ++_stats.quadsMasked;
        return false;
    }

    bool reads_dst = state.enabled &&
                     !(state.srcFactor == BlendFactor::One &&
                       state.dstFactor == BlendFactor::Zero &&
                       state.op == BlendOp::Add);
    // One cache access covers the quad's read-modify-write.
    if (_sink)
        _sink->surfaceAccess(x, y, /*is_write=*/true, /*no_fetch=*/false);
    else
        _surface->accessQuad(x, y, true);

    static const int offs[4][2] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
    for (int lane = 0; lane < 4; ++lane) {
        if (!((live_mask >> lane) & 1))
            continue;
        int px = x + offs[lane][0];
        int py = y + offs[lane][1];
        if (px >= _surface->width() || py >= _surface->height())
            continue;
        Vec4 dst = reads_dst ? unpackColor(_surface->word(px, py))
                             : Vec4{0, 0, 0, 0};
        Vec4 result = blendColors(state, colors[lane], dst);
        _surface->setWord(px, py, packColor(result));
        ++_stats.fragmentsBlended;
    }
    ++_stats.quadsBlended;
    return true;
}

} // namespace wc3d::frag
