/**
 * @file
 * Depth and stencil testing. "The z and stencil test are performed in
 * parallel in the same stage and may happen before shading (early z and
 * stencil test) or after shading" (paper Section III.C). Implements the
 * full OpenGL comparison/op set including the two-sided stencil used by
 * Doom3/Quake4's stencil shadow volumes.
 */

#ifndef WC3D_FRAGMENT_ZSTENCIL_HH
#define WC3D_FRAGMENT_ZSTENCIL_HH

#include <cstdint>

#include "fragment/framebuffer.hh"

namespace wc3d::frag {

/** Comparison functions for depth and stencil tests. */
enum class CompareFunc : std::uint8_t
{
    Never,
    Less,
    Equal,
    LEqual,
    Greater,
    NotEqual,
    GEqual,
    Always,
};

/** Stencil update operations. */
enum class StencilOp : std::uint8_t
{
    Keep,
    Zero,
    Replace,
    Incr,     ///< clamped increment
    IncrWrap,
    Decr,     ///< clamped decrement
    DecrWrap,
    Invert,
};

/** Per-face stencil configuration. */
struct StencilFace
{
    CompareFunc func = CompareFunc::Always;
    std::uint8_t ref = 0;
    std::uint8_t readMask = 0xff;
    std::uint8_t writeMask = 0xff;
    StencilOp sfail = StencilOp::Keep;  ///< stencil test failed
    StencilOp zfail = StencilOp::Keep;  ///< stencil passed, depth failed
    StencilOp zpass = StencilOp::Keep;  ///< both passed
};

/** Full depth/stencil render state. */
struct DepthStencilState
{
    bool depthTest = true;
    CompareFunc depthFunc = CompareFunc::LEqual;
    bool depthWrite = true;
    bool stencilTest = false;
    StencilFace front;
    StencilFace back;  ///< used when the primitive is back-facing

    /** @return true when any stencil op of @p face modifies memory. */
    static bool faceWritesStencil(const StencilFace &face);

    /** @return true when the state can never modify z or stencil. */
    bool readOnly() const;
};

/** Evaluate @p func on (value, ref). */
bool compareFunc(CompareFunc func, std::uint32_t value, std::uint32_t ref);

/** Apply a stencil op to the current (masked) stencil value. */
std::uint8_t applyStencilOp(StencilOp op, std::uint8_t current,
                            std::uint8_t ref);

/** Pack depth [0,1] and stencil into the surface word layout. */
std::uint32_t packDepthStencil(float depth, std::uint8_t stencil);

/** Depth field of a packed word as float in [0,1]. */
float unpackDepth(std::uint32_t word);

/** Stencil field of a packed word. */
std::uint8_t unpackStencil(std::uint32_t word);

/** Statistics of the z/stencil stage (paper Tables VIII, IX, XI). */
struct ZStencilStats
{
    std::uint64_t quadsIn = 0;        ///< quads entering the stage
    std::uint64_t quadsRemoved = 0;   ///< all live lanes failed
    std::uint64_t fragmentsIn = 0;    ///< live fragments tested/bypassed
    std::uint64_t fragmentsPassed = 0;
    std::uint64_t fullQuadsIn = 0;    ///< quads entering with 4 live lanes
};

/**
 * The z & stencil test unit operating on a DepthStencilSurface.
 */
class ZStencilUnit
{
  public:
    explicit ZStencilUnit(CachedSurface *surface) : _surface(surface) {}

    /**
     * Test a quad.
     *
     * @param state      depth/stencil render state
     * @param back_face  selects the back stencil face
     * @param x,y        quad top-left pixel
     * @param z          per-lane interpolated depth
     * @param live_mask  lanes still alive entering the stage (bit per
     *                   lane); updated to the lanes that passed
     * @param quad_z_max [out] maximum stored depth of the quad after
     *                   any writes (Hierarchical-Z feedback); only
     *                   meaningful when the state writes depth
     * @return true when at least one lane survived
     */
    bool testQuad(const DepthStencilState &state, bool back_face, int x,
                  int y, const float z[4], std::uint8_t &live_mask,
                  float &quad_z_max);

    /** As testQuad, additionally reporting the stored quad minimum
     *  (min/max Hierarchical-Z feedback). */
    bool testQuadEx(const DepthStencilState &state, bool back_face,
                    int x, int y, const float z[4],
                    std::uint8_t &live_mask, float &quad_z_min,
                    float &quad_z_max);

    /**
     * Early-accept path (min/max HZ): the depth test is known to pass
     * for every live lane, so the stored depth is written without
     * reading the z buffer. Only valid for plain Less/LEqual depth
     * states without stencil.
     *
     * @return the stored quad (min, max) after the writes.
     */
    std::pair<float, float> acceptQuad(const DepthStencilState &state,
                                       int x, int y, const float z[4],
                                       std::uint8_t live_mask);

    const ZStencilStats &stats() const { return _stats; }
    void resetStats() { _stats = ZStencilStats(); }

    /** Fold a worker-private unit's statistics into this one's. */
    void
    mergeStats(const ZStencilStats &s)
    {
        _stats.quadsIn += s.quadsIn;
        _stats.quadsRemoved += s.quadsRemoved;
        _stats.fragmentsIn += s.fragmentsIn;
        _stats.fragmentsPassed += s.fragmentsPassed;
        _stats.fullQuadsIn += s.fullQuadsIn;
    }

    /**
     * Defer surface-cache accesses to @p sink (null restores direct
     * access). Word reads/writes still hit the surface immediately —
     * only the cache/traffic accounting is rerouted, for tile workers
     * whose accesses are replayed in submission order afterwards.
     */
    void setAccessSink(SurfaceAccessSink *sink) { _sink = sink; }

  private:
    CachedSurface *_surface;
    SurfaceAccessSink *_sink = nullptr;
    ZStencilStats _stats;
};

} // namespace wc3d::frag

#endif // WC3D_FRAGMENT_ZSTENCIL_HH
