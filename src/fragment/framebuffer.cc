#include "fragment/framebuffer.hh"

#include <algorithm>
#include <span>

#include "common/log.hh"
#include "common/prof.hh"
#include "memory/compression.hh"

namespace wc3d::frag {

CachedSurface::CachedSurface(SurfaceKind kind, memsys::Client client,
                             int width, int height,
                             const SurfaceCacheConfig &config,
                             memsys::MemoryController *memory)
    : _kind(kind), _client(client), _width(width), _height(height),
      _blocksX((width + kBlockDim - 1) / kBlockDim),
      _blocksY((height + kBlockDim - 1) / kBlockDim),
      _words(static_cast<std::size_t>(_blocksX) * _blocksY * kBlockPixels,
             0),
      _dir(static_cast<std::size_t>(_blocksX) * _blocksY),
      _cache(config.ways, config.sets, config.lineBytes),
      _memory(memory),
      _base(memory
                ? memory->allocate(static_cast<std::uint64_t>(_blocksX) *
                                       _blocksY * kBlockBytes,
                                   256)
                : 0)
{
    WC3D_ASSERT(width > 0 && height > 0);
    WC3D_ASSERT(config.lineBytes == kBlockBytes &&
                "surface cache line must match the 8x8 block");
}

std::size_t
CachedSurface::wordIndex(int x, int y) const
{
    WC3D_ASSERT(x >= 0 && x < _width && y >= 0 && y < _height);
    // Tiled layout: blocks are contiguous 256-byte runs.
    std::size_t block = blockIndex(x, y);
    int lx = x % kBlockDim;
    int ly = y % kBlockDim;
    return block * kBlockPixels + static_cast<std::size_t>(ly) * kBlockDim +
           lx;
}

std::size_t
CachedSurface::blockIndex(int x, int y) const
{
    return static_cast<std::size_t>(y / kBlockDim) * _blocksX +
           static_cast<std::size_t>(x / kBlockDim);
}

std::uint64_t
CachedSurface::blockAddress(std::size_t block) const
{
    return _base + static_cast<std::uint64_t>(block) * kBlockBytes;
}

void
CachedSurface::fastClear(std::uint32_t value)
{
    std::fill(_words.begin(), _words.end(), value);
    _dir.fastClear();
    _cache.invalidateAll();
}

std::uint32_t
CachedSurface::word(int x, int y) const
{
    return _words[wordIndex(x, y)];
}

void
CachedSurface::setWord(int x, int y, std::uint32_t v)
{
    _words[wordIndex(x, y)] = v;
}

std::uint64_t
CachedSurface::blockFillBytes(std::size_t block) const
{
    switch (_dir.state(block)) {
      case memsys::BlockState::Cleared:
        return 0; // filled from the on-die clear-value register
      case memsys::BlockState::Compressed:
        return memsys::compressedSize(kBlockBytes);
      case memsys::BlockState::Uncompressed:
        return kBlockBytes;
    }
    return kBlockBytes;
}

std::uint64_t
CachedSurface::compressAndStore(std::size_t block)
{
    std::span<const std::uint32_t> contents(
        _words.data() + block * kBlockPixels, kBlockPixels);
    bool compressible =
        _kind == SurfaceKind::DepthStencil
            ? memsys::zBlockCompressible(contents, kBlockDim)
            : memsys::colorBlockCompressible(contents);
    _dir.setState(block, compressible ? memsys::BlockState::Compressed
                                      : memsys::BlockState::Uncompressed);
    return compressible ? memsys::compressedSize(kBlockBytes)
                        : kBlockBytes;
}

void
CachedSurface::accessQuad(int x, int y, bool is_write)
{
    std::size_t block = blockIndex(x, y);
    auto result = _cache.access(blockAddress(block), is_write);
    if (result.hit)
        return;
    if (_memory) {
        if (result.writeback) {
            std::size_t victim =
                static_cast<std::size_t>((result.writebackAddress - _base) /
                                         kBlockBytes);
            _memory->write(_client, compressAndStore(victim));
        }
        _memory->read(_client, blockFillBytes(block));
    }
}

void
CachedSurface::accessQuadNoFetch(int x, int y)
{
    std::size_t block = blockIndex(x, y);
    auto result = _cache.access(blockAddress(block), true);
    if (result.hit)
        return;
    if (_memory && result.writeback) {
        std::size_t victim = static_cast<std::size_t>(
            (result.writebackAddress - _base) / kBlockBytes);
        _memory->write(_client, compressAndStore(victim));
    }
    // No fill read: the caller overwrites without needing old data.
}

void
CachedSurface::flushDirty()
{
    WC3D_PROF_SCOPE("memory.writeback");
    if (!_memory) {
        _cache.flushDirty([](std::uint64_t) {});
        return;
    }
    _cache.flushDirty([this](std::uint64_t addr) {
        std::size_t block =
            static_cast<std::size_t>((addr - _base) / kBlockBytes);
        _memory->write(_client, compressAndStore(block));
    });
}

void
CachedSurface::chargeFullReadback(memsys::Client client)
{
    if (!_memory)
        return;
    std::uint64_t bytes = 0;
    for (std::size_t b = 0; b < _dir.blocks(); ++b)
        bytes += blockFillBytes(b);
    _memory->read(client, bytes);
}

Image
CachedSurface::toImage() const
{
    Image img(_width, _height);
    for (int y = 0; y < _height; ++y)
        for (int x = 0; x < _width; ++x)
            img.set(x, y, Rgba8::fromPacked(word(x, y)));
    return img;
}

} // namespace wc3d::frag
