#include "fragment/blend.hh"

#include <algorithm>

namespace wc3d::frag {

Vec4
blendFactorValue(BlendFactor f, const Vec4 &src, const Vec4 &dst)
{
    switch (f) {
      case BlendFactor::Zero:
        return {0, 0, 0, 0};
      case BlendFactor::One:
        return {1, 1, 1, 1};
      case BlendFactor::SrcColor:
        return src;
      case BlendFactor::InvSrcColor:
        return {1 - src.x, 1 - src.y, 1 - src.z, 1 - src.w};
      case BlendFactor::SrcAlpha:
        return {src.w, src.w, src.w, src.w};
      case BlendFactor::InvSrcAlpha:
        return {1 - src.w, 1 - src.w, 1 - src.w, 1 - src.w};
      case BlendFactor::DstColor:
        return dst;
      case BlendFactor::InvDstColor:
        return {1 - dst.x, 1 - dst.y, 1 - dst.z, 1 - dst.w};
      case BlendFactor::DstAlpha:
        return {dst.w, dst.w, dst.w, dst.w};
      case BlendFactor::InvDstAlpha:
        return {1 - dst.w, 1 - dst.w, 1 - dst.w, 1 - dst.w};
    }
    return {0, 0, 0, 0};
}

Vec4
blendColors(const BlendState &state, const Vec4 &src, const Vec4 &dst)
{
    Vec4 result;
    if (!state.enabled) {
        result = src;
    } else {
        Vec4 sf = blendFactorValue(state.srcFactor, src, dst);
        Vec4 df = blendFactorValue(state.dstFactor, src, dst);
        Vec4 s{src.x * sf.x, src.y * sf.y, src.z * sf.z, src.w * sf.w};
        Vec4 d{dst.x * df.x, dst.y * df.y, dst.z * df.z, dst.w * df.w};
        switch (state.op) {
          case BlendOp::Add:
            result = s + d;
            break;
          case BlendOp::Subtract:
            result = s - d;
            break;
          case BlendOp::RevSubtract:
            result = d - s;
            break;
          case BlendOp::Min:
            result = {std::min(src.x, dst.x), std::min(src.y, dst.y),
                      std::min(src.z, dst.z), std::min(src.w, dst.w)};
            break;
          case BlendOp::Max:
            result = {std::max(src.x, dst.x), std::max(src.y, dst.y),
                      std::max(src.z, dst.z), std::max(src.w, dst.w)};
            break;
        }
    }
    return {clampf(result.x, 0.0f, 1.0f), clampf(result.y, 0.0f, 1.0f),
            clampf(result.z, 0.0f, 1.0f), clampf(result.w, 0.0f, 1.0f)};
}

std::uint32_t
packColor(const Vec4 &c)
{
    Rgba8 p{floatToUnorm8(c.x), floatToUnorm8(c.y), floatToUnorm8(c.z),
            floatToUnorm8(c.w)};
    return p.packed();
}

Vec4
unpackColor(std::uint32_t word)
{
    Rgba8 p = Rgba8::fromPacked(word);
    return {unorm8ToFloat(p.r), unorm8ToFloat(p.g), unorm8ToFloat(p.b),
            unorm8ToFloat(p.a)};
}

} // namespace wc3d::frag
