/**
 * @file
 * The shared scalar arithmetic core of the shader ALU. Every executor
 * — the legacy field-by-field interpreter, the pre-decoded hot path
 * (shader/interp.cc) and the transcendental helper calls issued by the
 * x86-64 JIT (shader/jit/jit.cc) — computes instruction results through
 * aluResult(), so float special cases (RCP's zero guard, LG2's domain
 * clamp, LIT's exponent clamp, NaN propagation through MIN/MAX) are
 * defined in exactly one place and stay bit-identical across executors
 * by construction.
 */

#ifndef WC3D_SHADER_ALUCORE_HH
#define WC3D_SHADER_ALUCORE_HH

#include <cmath>

#include "common/log.hh"
#include "common/vecmath.hh"
#include "shader/isa.hh"

/**
 * The per-instruction helpers are large enough that the compiler
 * declines to inline them on its own, which would put an opaque call
 * (and a by-value Vec4 round-trip through memory) on every operand of
 * every interpreted instruction — and would stop the templated ALU
 * dispatch from constant-folding its opcode switch. Force the issue.
 */
#if defined(__GNUC__) || defined(__clang__)
#define WC3D_FORCE_INLINE inline __attribute__((always_inline))
#else
#define WC3D_FORCE_INLINE inline
#endif

namespace wc3d::shader {

/** Compile-time source-operand arity (mirrors opcodeInfo().numSrcs;
 *  the decoded-vs-legacy differential tests pin the two together). */
constexpr int
arityFor(Opcode op)
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::DP3:
      case Opcode::DP4:
      case Opcode::MIN:
      case Opcode::MAX:
      case Opcode::SLT:
      case Opcode::SGE:
      case Opcode::POW:
      case Opcode::XPD:
      case Opcode::DST:
        return 2;
      case Opcode::MAD:
      case Opcode::LRP:
      case Opcode::CMP:
        return 3;
      default:
        return 1;
    }
}

/**
 * MIN/MAX with pinned ±0 and NaN semantics: pick @p a only when the
 * strict ordered compare holds or @p b is NaN, else @p b — so
 * min(+0,-0) = -0, min(x,NaN) = x, min(NaN,x) = x (and symmetrically
 * for max). std::fmin/fmax must not be used here: which operand they
 * return on an equal compare is a build detail (glibc's x86-64 asm
 * resolves fmin(+0,-0) to its second operand, GCC's -O2 inline
 * expansion to its first), which made the reference interpreters
 * disagree across build flavours and with the JIT. These are pure
 * IEEE compares, so every build computes the same bits, and
 * jit/translate.cc emits exactly this blend (cmplt + cmpunord).
 */
WC3D_FORCE_INLINE float
minf(float a, float b)
{
    return a < b || std::isnan(b) ? a : b;
}

WC3D_FORCE_INLINE float
maxf(float a, float b)
{
    return b < a || std::isnan(b) ? a : b;
}

/** The shared arithmetic core; @p a/@p b/@p c are fully modified
 *  operand values. Returns the result to store (not used for KIL).
 *  Force-inlined so the switch folds away wherever @p op is a
 *  compile-time constant (the templated dispatch in interp.cc). */
WC3D_FORCE_INLINE Vec4
aluResult(Opcode op, const Vec4 &a, const Vec4 &b, const Vec4 &c)
{
    Vec4 r;
    switch (op) {
      case Opcode::MOV:
        r = a;
        break;
      case Opcode::ADD:
        r = a + b;
        break;
      case Opcode::SUB:
        r = a - b;
        break;
      case Opcode::MUL:
        r = {a.x * b.x, a.y * b.y, a.z * b.z, a.w * b.w};
        break;
      case Opcode::MAD:
        r = {a.x * b.x + c.x, a.y * b.y + c.y, a.z * b.z + c.z,
             a.w * b.w + c.w};
        break;
      case Opcode::DP3: {
        float d = a.x * b.x + a.y * b.y + a.z * b.z;
        r = {d, d, d, d};
        break;
      }
      case Opcode::DP4: {
        float d = a.dot(b);
        r = {d, d, d, d};
        break;
      }
      case Opcode::RCP: {
        float d = a.x != 0.0f ? 1.0f / a.x : 0.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::RSQ: {
        float s = std::fabs(a.x);
        float d = s > 0.0f ? 1.0f / std::sqrt(s) : 0.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::MIN:
        r = {minf(a.x, b.x), minf(a.y, b.y), minf(a.z, b.z),
             minf(a.w, b.w)};
        break;
      case Opcode::MAX:
        r = {maxf(a.x, b.x), maxf(a.y, b.y), maxf(a.z, b.z),
             maxf(a.w, b.w)};
        break;
      case Opcode::SLT:
        r = {a.x < b.x ? 1.0f : 0.0f, a.y < b.y ? 1.0f : 0.0f,
             a.z < b.z ? 1.0f : 0.0f, a.w < b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SGE:
        r = {a.x >= b.x ? 1.0f : 0.0f, a.y >= b.y ? 1.0f : 0.0f,
             a.z >= b.z ? 1.0f : 0.0f, a.w >= b.w ? 1.0f : 0.0f};
        break;
      case Opcode::FRC:
        r = {a.x - std::floor(a.x), a.y - std::floor(a.y),
             a.z - std::floor(a.z), a.w - std::floor(a.w)};
        break;
      case Opcode::FLR:
        r = {std::floor(a.x), std::floor(a.y), std::floor(a.z),
             std::floor(a.w)};
        break;
      case Opcode::ABS:
        r = {std::fabs(a.x), std::fabs(a.y), std::fabs(a.z),
             std::fabs(a.w)};
        break;
      case Opcode::EX2: {
        float d = std::exp2(a.x);
        r = {d, d, d, d};
        break;
      }
      case Opcode::LG2: {
        float d = a.x > 0.0f ? std::log2(a.x) : -126.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::POW: {
        float d = std::pow(std::fabs(a.x), b.x);
        r = {d, d, d, d};
        break;
      }
      case Opcode::LRP:
        r = {a.x * b.x + (1.0f - a.x) * c.x,
             a.y * b.y + (1.0f - a.y) * c.y,
             a.z * b.z + (1.0f - a.z) * c.z,
             a.w * b.w + (1.0f - a.w) * c.w};
        break;
      case Opcode::CMP:
        r = {a.x < 0.0f ? b.x : c.x, a.y < 0.0f ? b.y : c.y,
             a.z < 0.0f ? b.z : c.z, a.w < 0.0f ? b.w : c.w};
        break;
      case Opcode::NRM: {
        Vec3 n = a.xyz().normalized();
        r = {n.x, n.y, n.z, a.w};
        break;
      }
      case Opcode::XPD: {
        Vec3 x = a.xyz().cross(b.xyz());
        r = {x.x, x.y, x.z, 1.0f};
        break;
      }
      case Opcode::DST: {
        r = {1.0f, a.y * b.y, a.z, b.w};
        break;
      }
      case Opcode::LIT: {
        float diffuse = maxf(a.x, 0.0f);
        float specular = 0.0f;
        if (a.x > 0.0f) {
            float e = clampf(a.w, -128.0f, 128.0f);
            specular = std::pow(maxf(a.y, 0.0f), e);
        }
        r = {1.0f, diffuse, specular, 1.0f};
        break;
      }
      default:
        panic("shader: ALU executor got texture opcode %s",
              opcodeName(op));
    }
    return r;
}

} // namespace wc3d::shader

#endif // WC3D_SHADER_ALUCORE_HH
