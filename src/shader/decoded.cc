#include "shader/decoded.hh"

#include <bit>

#include "common/log.hh"
#include "shader/interp.hh"

namespace wc3d::shader {

namespace {

DecodedSrc
decodeSrc(const SrcOperand &src)
{
    DecodedSrc d;
    d.file = static_cast<std::uint8_t>(src.file);
    d.index = src.index;
    for (int i = 0; i < 4; ++i)
        d.comps[i] = swizzleComp(src.swizzle, i);
    if (src.swizzle != kSwizzleXYZW)
        d.flags |= kSrcSwizzled;
    if (src.absolute)
        d.flags |= kSrcAbsolute;
    if (src.negate)
        d.flags |= kSrcNegate;
    return d;
}

/** Component bits (kMaskX..kMaskW) a decoded source reads of its
 *  register, i.e. the set selected by its swizzle. */
std::uint8_t
srcComponentBits(const DecodedSrc &src)
{
    std::uint8_t bits = 0;
    for (int i = 0; i < 4; ++i)
        bits |= static_cast<std::uint8_t>(1u << src.comps[i]);
    return bits;
}

} // namespace

DecodedProgram::DecodedProgram(const Program &program)
{
    _ops.reserve(program.code().size());

    // Per-register component-written masks for the clear plan.
    std::uint8_t written_temp[kMaxTemps] = {};
    std::uint8_t written_out[kMaxOutputs] = {};

    for (const Instruction &in : program.code()) {
        const OpcodeInfo &info = opcodeInfo(in.op);
        DecodedOp op;
        op.op = in.op;
        op.sampler = in.sampler;
        _hasTexture = _hasTexture || info.isTexture;

        for (int s = 0; s < info.numSrcs; ++s) {
            op.src[s] = decodeSrc(in.src[s]);
            const DecodedSrc &src = op.src[s];
            std::uint8_t reads = srcComponentBits(src);
            switch (in.src[s].file) {
              case RegFile::Input:
                _inputReadMask |= 1u << src.index;
                break;
              case RegFile::Temp:
                if (reads & static_cast<std::uint8_t>(
                                ~written_temp[src.index]))
                    _tempClearMask |= 1u << src.index;
                break;
              case RegFile::Output:
                if (reads & static_cast<std::uint8_t>(
                                ~written_out[src.index]))
                    _outputClearMask |= 1u << src.index;
                break;
              case RegFile::Const:
                break;
            }
        }

        if (info.hasDst) {
            if (in.dst.file != RegFile::Temp &&
                in.dst.file != RegFile::Output) {
                panic("shader: write to read-only register file");
            }
            op.dstFile = static_cast<std::uint8_t>(in.dst.file);
            op.dstIndex = in.dst.index;
            op.writeMask = in.dst.writeMask;
            if (in.dst.saturate)
                op.dstFlags |= kDstSaturate;
            if (in.dst.writeMask != kMaskXYZW)
                op.dstFlags |= kDstPartial;
            if (in.dst.file == RegFile::Temp)
                written_temp[in.dst.index] |= in.dst.writeMask;
            else
                written_out[in.dst.index] |= in.dst.writeMask;
        }
        _ops.push_back(op);
    }

    // Outputs are read externally (clip position, varyings, colour) in
    // all four components: any output not fully written must start at
    // zero for reuse to match a fresh LaneState.
    for (int o = 0; o < kMaxOutputs; ++o) {
        if (written_out[o] != kMaskXYZW)
            _outputClearMask |= 1u << o;
    }
}

void
DecodedProgram::prepareLane(LaneState &lane) const
{
    for (std::uint32_t m = _tempClearMask; m;) {
        int i = std::countr_zero(m);
        m &= m - 1;
        lane.temps[i] = Vec4();
    }
    for (std::uint32_t m = _outputClearMask; m;) {
        int i = std::countr_zero(m);
        m &= m - 1;
        lane.outputs[i] = Vec4();
    }
    lane.killed = false;
}

const DecodedProgram &
Program::decoded() const
{
    // Lazy, non-atomic cache: decoding happens on the thread that owns
    // the program (the simulator pre-decodes at the top of each draw,
    // before any worker is enqueued, which establishes the necessary
    // happens-before for the read-only accesses that follow).
    if (!_decoded)
        _decoded = std::make_shared<const DecodedProgram>(*this);
    return *_decoded;
}

} // namespace wc3d::shader
