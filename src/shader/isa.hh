/**
 * @file
 * The shader instruction set. Modelled on the ARB vertex/fragment program
 * ISA that ATTILA's driver targets: SIMD4 float registers, source
 * swizzle/negate/abs modifiers, destination write mask and saturate, and
 * texture-sampling instructions (TEX/TXP/TXB) plus fragment KIL.
 *
 * The ALU-vs-texture split of this ISA is the quantity the paper's
 * Table XII/XIII characterization is built around.
 */

#ifndef WC3D_SHADER_ISA_HH
#define WC3D_SHADER_ISA_HH

#include <cstdint>
#include <string>

namespace wc3d::shader {

/** Shader opcodes. */
enum class Opcode : std::uint8_t
{
    MOV,  ///< d = s0
    ADD,  ///< d = s0 + s1
    SUB,  ///< d = s0 - s1
    MUL,  ///< d = s0 * s1
    MAD,  ///< d = s0 * s1 + s2
    DP3,  ///< d = dot3(s0, s1) broadcast
    DP4,  ///< d = dot4(s0, s1) broadcast
    RCP,  ///< d = 1 / s0.x broadcast
    RSQ,  ///< d = 1 / sqrt(|s0.x|) broadcast
    MIN,  ///< d = min(s0, s1)
    MAX,  ///< d = max(s0, s1)
    SLT,  ///< d = (s0 < s1) ? 1 : 0
    SGE,  ///< d = (s0 >= s1) ? 1 : 0
    FRC,  ///< d = s0 - floor(s0)
    FLR,  ///< d = floor(s0)
    ABS,  ///< d = |s0|
    EX2,  ///< d = 2^s0.x broadcast
    LG2,  ///< d = log2(s0.x) broadcast
    POW,  ///< d = s0.x ^ s1.x broadcast
    LRP,  ///< d = s0 * s1 + (1 - s0) * s2
    CMP,  ///< d = (s0 < 0) ? s1 : s2
    NRM,  ///< d.xyz = normalize(s0.xyz), d.w = s0.w
    XPD,  ///< d.xyz = cross(s0.xyz, s1.xyz), d.w = 1
    DST,  ///< distance vector (1, s0.y*s1.y, s0.z, s1.w)
    LIT,  ///< lighting coefficients
    TEX,  ///< d = sample(sampler, s0.xy)
    TXP,  ///< d = sample(sampler, s0.xy / s0.w)
    TXB,  ///< d = sample(sampler, s0.xy, bias = s0.w)
    KIL,  ///< kill fragment when any enabled component of s0 < 0
    NumOpcodes,
};

/** Register files addressable by operands. */
enum class RegFile : std::uint8_t
{
    Input,    ///< vertex attributes / fragment varyings (v#)
    Temp,     ///< temporaries (r#)
    Const,    ///< program constants (c#)
    Output,   ///< shader outputs (o#)
};

/** Limits of the register architecture. */
constexpr int kMaxInputs = 16;
constexpr int kMaxTemps = 16;
constexpr int kMaxConsts = 64;
constexpr int kMaxOutputs = 8;
constexpr int kMaxSamplers = 8;

/** Component selectors for swizzles. */
enum : std::uint8_t { kCompX = 0, kCompY = 1, kCompZ = 2, kCompW = 3 };

/** Pack a 4-component swizzle into a byte (x=bits 0-1 ... w=bits 6-7). */
constexpr std::uint8_t
packSwizzle(std::uint8_t x, std::uint8_t y, std::uint8_t z, std::uint8_t w)
{
    return static_cast<std::uint8_t>(x | (y << 2) | (z << 4) | (w << 6));
}

/** The identity swizzle .xyzw. */
constexpr std::uint8_t kSwizzleXYZW = packSwizzle(0, 1, 2, 3);

/** Extract component @p i (0..3) of a packed swizzle. */
constexpr std::uint8_t
swizzleComp(std::uint8_t swizzle, int i)
{
    return (swizzle >> (2 * i)) & 0x3;
}

/** Source operand: register + swizzle + negate/abs modifiers. */
struct SrcOperand
{
    RegFile file = RegFile::Temp;
    std::uint8_t index = 0;
    std::uint8_t swizzle = kSwizzleXYZW;
    bool negate = false;
    bool absolute = false;
};

/** Write-mask bits. */
enum : std::uint8_t
{
    kMaskX = 1,
    kMaskY = 2,
    kMaskZ = 4,
    kMaskW = 8,
    kMaskXYZW = 0xf,
};

/** Destination operand: register + write mask + saturate modifier. */
struct DstOperand
{
    RegFile file = RegFile::Temp;
    std::uint8_t index = 0;
    std::uint8_t writeMask = kMaskXYZW;
    bool saturate = false;
};

/** One decoded instruction. */
struct Instruction
{
    Opcode op = Opcode::MOV;
    DstOperand dst;
    SrcOperand src[3];
    std::uint8_t sampler = 0; ///< texture unit for TEX/TXP/TXB
};

/** Static opcode properties. */
struct OpcodeInfo
{
    const char *name;  ///< mnemonic
    int numSrcs;       ///< source operand count
    bool isTexture;    ///< TEX/TXP/TXB
    bool hasDst;       ///< false only for KIL
};

/** @return the static properties of @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** @return the mnemonic of @p op ("MAD", "TEX", ...). */
const char *opcodeName(Opcode op);

/**
 * Look up an opcode by mnemonic (case-insensitive).
 * @return true and sets @p out when found.
 */
bool opcodeFromName(const std::string &name, Opcode &out);

} // namespace wc3d::shader

#endif // WC3D_SHADER_ISA_HH
