/**
 * @file
 * DecodedProgram -> x86-64 translator. One straight-line kernel per
 * program (no control flow beyond the skip-branch around the KIL
 * trampoline), quad-major: each decoded op is emitted once per lane,
 * which is exactly the decoded interpreter's loop structure with the
 * dispatch overhead compiled away.
 *
 * Bit-exactness contract with shader/interp.cc, relied on by the
 * three-way differential tests:
 *  - every SSE sequence mirrors the scalar expression's operand order
 *    (mulps/addps for MAD — the build never enables FMA contraction —
 *    left-associated adds for DP3/DP4, dst-operand NaN propagation);
 *  - negate is a multiply by -1.0 (matching `v * -1.0f`), not a sign
 *    flip, so NaN and zero signs come out identically;
 *  - MIN/MAX emit the pinned alucore.hh minf/maxf blend (pick a when
 *    the strict ordered compare holds || isnan(b), else b) with
 *    cmpps+blend logic;
 *  - FLR/FRC use roundps toward -inf, the same instruction glibc's
 *    SSE4.1 floorf resolves to;
 *  - everything libm-dependent (EX2/LG2/POW/NRM/XPD/DST/LIT) and all
 *    texture sampling calls back into C++ helpers that share
 *    aluResult()/sampleQuad() with the interpreter.
 */

#include <cstddef>
#include <utility>

#include "common/log.hh"
#include "shader/alucore.hh"
#include "shader/decoded.hh"
#include "shader/jit/emitter.hh"
#include "shader/jit/jit.hh"
#include "shader/jit/runtime.hh"

namespace wc3d::shader::jit {

namespace {

// Stack frame: [rsp+0x00) quad texture coords, [rsp+0x40) quad texture
// results / helper result, [rsp+0x80) helper operand a, [rsp+0x90)
// helper operand b. 0xA8 keeps calls 16-byte aligned (entry rsp = 8
// mod 16, four pushes preserve that, 0xA8 = 8 mod 16 cancels it).
constexpr std::int32_t kScratchCoords = 0x00;
constexpr std::int32_t kScratchOut = 0x40;
constexpr std::int32_t kScratchA = 0x80;
constexpr std::int32_t kScratchB = 0x90;
constexpr std::int32_t kFrameBytes = 0xA8;

// Pinned registers (all callee-saved, so helper calls preserve them):
// r12 = state base (QuadState* / LaneState*), r13 = constants,
// rbx = CallCtx*, r14 = literal pool.

std::uint64_t
addrOf(void (*fn)(Vec4 *, const Vec4 *, const Vec4 *))
{
    return reinterpret_cast<std::uint64_t>(
        reinterpret_cast<void *>(fn));
}

/** Helper for the ops that round-trip through aluResult(). */
std::uint64_t
aluHelper(Opcode op)
{
    switch (op) {
      case Opcode::EX2:
        return addrOf(&wc3dJitAluEx2);
      case Opcode::LG2:
        return addrOf(&wc3dJitAluLg2);
      case Opcode::POW:
        return addrOf(&wc3dJitAluPow);
      case Opcode::NRM:
        return addrOf(&wc3dJitAluNrm);
      case Opcode::XPD:
        return addrOf(&wc3dJitAluXpd);
      case Opcode::DST:
        return addrOf(&wc3dJitAluDst);
      case Opcode::LIT:
        return addrOf(&wc3dJitAluLit);
      default:
        return 0;
    }
}

constexpr bool
isTexOp(Opcode op)
{
    return op == Opcode::TEX || op == Opcode::TXP || op == Opcode::TXB;
}

/** Base register + displacement of a register-file slot for the lane
 *  whose LaneState starts at @p lane_disp from r12. */
std::pair<int, std::int32_t>
regSlot(std::uint8_t file, std::uint8_t index, std::int32_t lane_disp)
{
    std::int32_t elem = static_cast<std::int32_t>(index) * 16;
    switch (static_cast<RegFile>(file)) {
      case RegFile::Input:
        return {kR12, lane_disp +
                          static_cast<std::int32_t>(
                              offsetof(LaneState, inputs)) +
                          elem};
      case RegFile::Temp:
        return {kR12, lane_disp +
                          static_cast<std::int32_t>(
                              offsetof(LaneState, temps)) +
                          elem};
      case RegFile::Const:
        return {kR13, elem};
      case RegFile::Output:
        return {kR12, lane_disp +
                          static_cast<std::int32_t>(
                              offsetof(LaneState, outputs)) +
                          elem};
    }
    return {kR12, 0};
}

std::uint8_t
swizzleImm(const DecodedSrc &src)
{
    return static_cast<std::uint8_t>(src.comps[0] | (src.comps[1] << 2) |
                                     (src.comps[2] << 4) |
                                     (src.comps[3] << 6));
}

/** Load a fully modified source operand into xmm @p x. */
void
emitLoadSrc(Emitter &e, int x, const DecodedSrc &src, std::int32_t lane_disp)
{
    auto [base, disp] = regSlot(src.file, src.index, lane_disp);
    e.movupsLoad(x, base, disp);
    if (src.flags & kSrcSwizzled)
        e.shufps(x, x, swizzleImm(src));
    if (src.flags & kSrcAbsolute)
        e.andpsMem(x, kR14, kPoolAbsMask);
    if (src.flags & kSrcNegate)
        e.mulpsMem(x, kR14, kPoolNegOne);
}

/** Store xmm @p val to the destination with saturate / write-mask
 *  handling (clobbers xmm6/xmm7). */
void
emitStoreDst(Emitter &e, const DecodedOp &op, std::int32_t lane_disp,
             int val)
{
    if (op.dstFlags & kDstSaturate) {
        // clampf order: max(v, 0) then min(t, 1), with the constant in
        // the dst operand so NaN lanes come out as the scalar code's.
        e.movapsLoad(6, kR14, kPoolZero);
        e.maxps(6, val);
        e.movapsLoad(7, kR14, kPoolOne);
        e.minps(7, 6);
        val = 7;
    }
    auto [base, disp] = regSlot(op.dstFile, op.dstIndex, lane_disp);
    if (op.dstFlags & kDstPartial) {
        e.movupsLoad(6, base, disp);
        e.blendps(6, val, op.writeMask);
        e.movupsStore(base, disp, 6);
    } else {
        e.movupsStore(base, disp, val);
    }
}

/** Inline SSE for the regular ALU ops. Operands arrive in xmm0 (a),
 *  xmm1 (b), xmm2 (c); the result must end in xmm0. xmm3-xmm5 are
 *  scratch. @return false for ops that need the C++ helper. */
bool
emitAluInline(Emitter &e, Opcode op)
{
    switch (op) {
      case Opcode::MOV:
        break;
      case Opcode::ADD:
        e.addps(0, 1);
        break;
      case Opcode::SUB:
        e.subps(0, 1);
        break;
      case Opcode::MUL:
        e.mulps(0, 1);
        break;
      case Opcode::MAD:
        e.mulps(0, 1);
        e.addps(0, 2);
        break;
      case Opcode::DP3:
        e.mulps(0, 1);
        e.movaps(3, 0);
        e.shufps(3, 3, 0x55); // yyyy
        e.movaps(4, 0);
        e.shufps(4, 4, 0xAA); // zzzz
        e.shufps(0, 0, 0x00); // xxxx
        e.addps(0, 3);        // (x+y)
        e.addps(0, 4);        // (x+y)+z
        break;
      case Opcode::DP4:
        e.mulps(0, 1);
        e.movaps(3, 0);
        e.shufps(3, 3, 0x55);
        e.movaps(4, 0);
        e.shufps(4, 4, 0xAA);
        e.movaps(5, 0);
        e.shufps(5, 5, 0xFF); // wwww
        e.shufps(0, 0, 0x00);
        e.addps(0, 3);
        e.addps(0, 4);
        e.addps(0, 5); // ((x+y)+z)+w
        break;
      case Opcode::RCP:
        e.shufps(0, 0, 0x00); // broadcast a.x
        e.movaps(3, 0);
        e.cmppsMem(3, kR14, kPoolZero, kCmpNeq); // x != 0 (NaN: true)
        e.movapsLoad(4, kR14, kPoolOne);
        e.divps(4, 0); // 1/x
        e.andps(4, 3); // zero the x == 0 case
        e.movaps(0, 4);
        break;
      case Opcode::RSQ:
        e.shufps(0, 0, 0x00);
        e.andpsMem(0, kR14, kPoolAbsMask); // s = |a.x|
        e.movapsLoad(3, kR14, kPoolZero);
        e.cmpps(3, 0, kCmpLt); // 0 < s (NaN: false)
        e.sqrtps(4, 0);
        e.movapsLoad(5, kR14, kPoolOne);
        e.divps(5, 4); // 1/sqrt(s)
        e.andps(5, 3); // zero the s <= 0 and NaN cases
        e.movaps(0, 5);
        break;
      case Opcode::MIN:
        // alucore.hh minf: pick a only when a<b strictly (an ordered
        // compare) or isnan(b), else b — so min(+0,-0) = -0. Pinned
        // there because std::fmin's equal-compare result is a build
        // detail.
        e.movaps(3, 0);
        e.cmpps(3, 1, kCmpLt);
        e.movaps(4, 1);
        e.cmpps(4, 4, kCmpUnord); // isnan(b)
        e.orps(3, 4);             // pick-a mask
        e.movaps(4, 0);
        e.andps(4, 3);
        e.andnps(3, 1);
        e.orps(3, 4);
        e.movaps(0, 3);
        break;
      case Opcode::MAX:
        // alucore.hh maxf: pick a only when b<a strictly (ordered)
        // or isnan(b), else b.
        e.movaps(3, 1);
        e.cmpps(3, 0, kCmpLt); // b<a, ordered
        e.movaps(4, 1);
        e.cmpps(4, 4, kCmpUnord);
        e.orps(3, 4);
        e.movaps(4, 0);
        e.andps(4, 3);
        e.andnps(3, 1);
        e.orps(3, 4);
        e.movaps(0, 3);
        break;
      case Opcode::SLT:
        e.cmpps(0, 1, kCmpLt);
        e.andpsMem(0, kR14, kPoolOne); // mask -> 1.0f / +0.0f
        break;
      case Opcode::SGE:
        // a>=b == b<=a ordered; NaN lanes correctly yield 0.
        e.movaps(3, 1);
        e.cmpps(3, 0, kCmpLe);
        e.andpsMem(3, kR14, kPoolOne);
        e.movaps(0, 3);
        break;
      case Opcode::FRC:
        e.movaps(3, 0);
        e.roundps(3, 3, kRoundFloor);
        e.subps(0, 3); // a - floor(a)
        break;
      case Opcode::FLR:
        e.roundps(0, 0, kRoundFloor);
        break;
      case Opcode::ABS:
        e.andpsMem(0, kR14, kPoolAbsMask);
        break;
      case Opcode::LRP:
        e.movapsLoad(3, kR14, kPoolOne);
        e.subps(3, 0); // 1-a
        e.mulps(3, 2); // (1-a)*c
        e.mulps(0, 1); // a*b
        e.addps(0, 3); // a*b + (1-a)*c
        break;
      case Opcode::CMP:
        e.movaps(3, 0);
        e.cmppsMem(3, kR14, kPoolZero, kCmpLt); // a < 0 (NaN: false -> c)
        e.movaps(4, 3);
        e.andps(4, 1);  // mask & b
        e.andnps(3, 2); // ~mask & c
        e.orps(3, 4);
        e.movaps(0, 3);
        break;
      default:
        return false;
    }
    return true;
}

/** Emit one ALU op for the lane at @p lane_disp. */
void
emitAluLane(Emitter &e, const DecodedOp &op, std::int32_t lane_disp)
{
    int arity = arityFor(op.op);
    std::uint64_t helper = aluHelper(op.op);
    emitLoadSrc(e, 0, op.src[0], lane_disp);
    if (helper != 0) {
        e.movapsStore(kRsp, kScratchA, 0);
        if (arity >= 2) {
            emitLoadSrc(e, 0, op.src[1], lane_disp);
            e.movapsStore(kRsp, kScratchB, 0);
        }
        e.lea(kRdi, kRsp, kScratchOut);
        e.lea(kRsi, kRsp, kScratchA);
        e.lea(kRdx, kRsp, kScratchB);
        e.movRI64(kRax, helper);
        e.callReg(kRax);
        e.movapsLoad(0, kRsp, kScratchOut);
    } else {
        if (arity >= 2)
            emitLoadSrc(e, 1, op.src[1], lane_disp);
        if (arity >= 3)
            emitLoadSrc(e, 2, op.src[2], lane_disp);
        bool ok = emitAluInline(e, op.op);
        WC3D_ASSERT(ok && "ALU op neither inline nor helper");
    }
    emitStoreDst(e, op, lane_disp, 0);
}

/** Emit a quad KIL: evaluate all four lane conditions into a mask,
 *  then call the bookkeeping trampoline only when any lane kills. */
void
emitKillQuad(Emitter &e, const DecodedOp &op, const std::int32_t *lane_disp)
{
    e.xorR32(kRax, kRax);
    for (int l = 0; l < 4; ++l) {
        emitLoadSrc(e, 0, op.src[0], lane_disp[l]);
        e.cmppsMem(0, kR14, kPoolZero, kCmpLt); // any comp < 0
        e.movmskps(kRcx, 0);
        e.testR32(kRcx, kRcx);
        e.setne8(kRcx);
        e.movzx32From8(kRcx, kRcx);
        if (l > 0)
            e.shlR32(kRcx, static_cast<std::uint8_t>(l));
        e.orR32(kRax, kRcx);
    }
    e.testR32(kRax, kRax);
    std::size_t skip = e.jzForward();
    e.movRR64(kRdi, kRbx);
    e.movRR32(kRsi, kRax);
    e.movRI64(kRax, reinterpret_cast<std::uint64_t>(
                        reinterpret_cast<void *>(&wc3dJitKillQuad)));
    e.callReg(kRax);
    e.patchForward(skip);
}

/** Emit a single-lane KIL (run() counts every take). */
void
emitKillLane(Emitter &e, const DecodedOp &op)
{
    emitLoadSrc(e, 0, op.src[0], 0);
    e.cmppsMem(0, kR14, kPoolZero, kCmpLt);
    e.movmskps(kRax, 0);
    e.testR32(kRax, kRax);
    std::size_t skip = e.jzForward();
    e.movRR64(kRdi, kRbx);
    e.movRI64(kRax, reinterpret_cast<std::uint64_t>(
                        reinterpret_cast<void *>(&wc3dJitKillLane)));
    e.callReg(kRax);
    e.patchForward(skip);
}

/** Emit a texture op for the whole quad: project/extract-bias per lane
 *  in the decoded interpreter's order, then one sampleQuad trampoline
 *  call, then per-lane stores. */
void
emitTexQuad(Emitter &e, const DecodedOp &op, const std::int32_t *lane_disp)
{
    for (int l = 0; l < 4; ++l) {
        emitLoadSrc(e, 0, op.src[0], lane_disp[l]);
        if (op.op == Opcode::TXP) {
            // c.w != 0 ? {c.x/c.w, c.y/c.w, c.z/c.w, 1} : c — computed
            // unconditionally, selected by the w != 0 mask (NaN w takes
            // the projected branch, like the scalar comparison).
            e.movaps(1, 0);
            e.shufps(1, 1, 0xFF); // wwww
            e.movaps(2, 0);
            e.divps(2, 1);
            e.blendpsMem(2, kR14, kPoolOne, 0x8); // w := 1
            e.movaps(3, 1);
            e.cmppsMem(3, kR14, kPoolZero, kCmpNeq);
            e.movaps(4, 3);
            e.andps(4, 2);  // mask & projected
            e.andnps(3, 0); // ~mask & original
            e.orps(3, 4);
            e.movaps(0, 3);
        }
        e.movapsStore(kRsp, kScratchCoords + 16 * l, 0);
    }
    if (op.op == Opcode::TXB) {
        // Per-quad bias comes from the first lane's (unprojected) w.
        e.movssLoad(0, kRsp, kScratchCoords + 12);
    } else {
        e.xorps(0, 0);
    }
    e.movRR64(kRdi, kRbx);
    e.movRI32(kRsi, op.sampler);
    e.lea(kRdx, kRsp, kScratchCoords);
    e.lea(kRcx, kRsp, kScratchOut);
    e.movRI64(kRax, reinterpret_cast<std::uint64_t>(
                        reinterpret_cast<void *>(&wc3dJitSampleQuad)));
    e.callReg(kRax);
    for (int l = 0; l < 4; ++l) {
        e.movapsLoad(0, kRsp, kScratchOut + 16 * l);
        emitStoreDst(e, op, lane_disp[l], 0);
    }
}

} // namespace

bool
emitKernel(Emitter &e, const DecodedProgram &dec, int lanes,
           std::uint64_t pool_addr, std::string *why)
{
    WC3D_ASSERT((lanes == 1 || lanes == 4) && "kernel shape");
    std::int32_t lane_disp[4] = {0, 0, 0, 0};
    if (lanes == 4) {
        for (int l = 0; l < 4; ++l) {
            lane_disp[l] = static_cast<std::int32_t>(
                offsetof(QuadState, lanes) +
                static_cast<std::size_t>(l) * sizeof(LaneState));
        }
    }

    e.push(kRbx);
    e.push(kR12);
    e.push(kR13);
    e.push(kR14);
    e.subRsp(kFrameBytes);
    e.movRR64(kR12, kRdi);
    e.movRR64(kR13, kRsi);
    e.movRR64(kRbx, kRdx);
    e.movRI64(kR14, pool_addr);

    for (const DecodedOp &op : dec.ops()) {
        if (isTexOp(op.op)) {
            if (lanes != 4) {
                if (why)
                    *why = "texture op in single-lane kernel";
                return false;
            }
            emitTexQuad(e, op, lane_disp);
        } else if (op.op == Opcode::KIL) {
            if (lanes == 4) {
                emitKillQuad(e, op, lane_disp);
            } else {
                emitKillLane(e, op);
            }
        } else {
            for (int l = 0; l < lanes; ++l)
                emitAluLane(e, op, lane_disp[l]);
        }
    }

    e.addRsp(kFrameBytes);
    e.pop(kR14);
    e.pop(kR13);
    e.pop(kR12);
    e.pop(kRbx);
    e.ret();
    return true;
}

} // namespace wc3d::shader::jit
