/**
 * @file
 * Minimal x86-64 machine-code emitter for the shader JIT: exactly the
 * instruction set the translator needs (SSE/SSE4.1 packed-float ops,
 * a handful of GPR moves, call-through-register, one forward branch
 * shape), encoded by hand into a byte vector. Legacy (non-VEX)
 * encodings only, so the kernels run on any x86-64 part with SSE4.1.
 *
 * Register operands are plain ints: XMM registers 0-15 for the vector
 * ops, GPR numbers (RAX=0 ... R15=15) for the scalar ops. REX prefixes
 * are derived from the high bits automatically.
 */

#ifndef WC3D_SHADER_JIT_EMITTER_HH
#define WC3D_SHADER_JIT_EMITTER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wc3d::shader::jit {

// GPR numbers (SysV argument order: RDI, RSI, RDX, RCX, R8, R9).
constexpr int kRax = 0;
constexpr int kRcx = 1;
constexpr int kRdx = 2;
constexpr int kRbx = 3;
constexpr int kRsp = 4;
constexpr int kRsi = 6;
constexpr int kRdi = 7;
constexpr int kR12 = 12;
constexpr int kR13 = 13;
constexpr int kR14 = 14;

// cmpps predicate immediates.
constexpr std::uint8_t kCmpEq = 0;
constexpr std::uint8_t kCmpLt = 1;
constexpr std::uint8_t kCmpLe = 2;
constexpr std::uint8_t kCmpUnord = 3;
constexpr std::uint8_t kCmpNeq = 4;

/** roundps control: round toward -inf, suppress exceptions — floor(). */
constexpr std::uint8_t kRoundFloor = 0x09;

class Emitter
{
  public:
    std::vector<std::uint8_t> code;

    void u8(std::uint8_t b) { code.push_back(b); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    // --- SSE register-register / register-memory forms ------------------

    void movaps(int dst, int src) { sseRR(0x28, dst, src); }
    void movapsLoad(int dst, int base, std::int32_t disp)
    {
        sseRM(0x28, dst, base, disp);
    }
    void movapsStore(int base, std::int32_t disp, int src)
    {
        sseRM(0x29, src, base, disp);
    }
    void movupsLoad(int dst, int base, std::int32_t disp)
    {
        sseRM(0x10, dst, base, disp);
    }
    void movupsStore(int base, std::int32_t disp, int src)
    {
        sseRM(0x11, src, base, disp);
    }
    void movssLoad(int dst, int base, std::int32_t disp)
    {
        u8(0xF3);
        sseRM(0x10, dst, base, disp);
    }

    void addps(int dst, int src) { sseRR(0x58, dst, src); }
    void subps(int dst, int src) { sseRR(0x5C, dst, src); }
    void mulps(int dst, int src) { sseRR(0x59, dst, src); }
    void divps(int dst, int src) { sseRR(0x5E, dst, src); }
    void minps(int dst, int src) { sseRR(0x5D, dst, src); }
    void maxps(int dst, int src) { sseRR(0x5F, dst, src); }
    void sqrtps(int dst, int src) { sseRR(0x51, dst, src); }
    void andps(int dst, int src) { sseRR(0x54, dst, src); }
    void andnps(int dst, int src) { sseRR(0x55, dst, src); }
    void orps(int dst, int src) { sseRR(0x56, dst, src); }
    void xorps(int dst, int src) { sseRR(0x57, dst, src); }

    void andpsMem(int dst, int base, std::int32_t disp)
    {
        sseRM(0x54, dst, base, disp);
    }
    void mulpsMem(int dst, int base, std::int32_t disp)
    {
        sseRM(0x59, dst, base, disp);
    }
    void addpsMem(int dst, int base, std::int32_t disp)
    {
        sseRM(0x58, dst, base, disp);
    }
    void divpsMem(int dst, int base, std::int32_t disp)
    {
        sseRM(0x5E, dst, base, disp);
    }

    void cmpps(int dst, int src, std::uint8_t pred)
    {
        sseRR(0xC2, dst, src);
        u8(pred);
    }
    void cmppsMem(int dst, int base, std::int32_t disp, std::uint8_t pred)
    {
        sseRM(0xC2, dst, base, disp);
        u8(pred);
    }
    void shufps(int dst, int src, std::uint8_t imm)
    {
        sseRR(0xC6, dst, src);
        u8(imm);
    }

    /** movmskps gpr, xmm — sign bits of the four lanes. */
    void movmskps(int gpr, int xmm) { sseRR(0x50, gpr, xmm); }

    // --- SSE4.1 (66 0F 3A xx /r ib) -------------------------------------

    /** roundps dst, src, mode. */
    void roundps(int dst, int src, std::uint8_t mode)
    {
        sse4RR(0x08, dst, src, mode);
    }

    /** blendps dst, src, imm — imm bit i set selects src lane i. */
    void blendps(int dst, int src, std::uint8_t imm)
    {
        sse4RR(0x0C, dst, src, imm);
    }
    void blendpsMem(int dst, int base, std::int32_t disp, std::uint8_t imm)
    {
        sse4RM(0x0C, dst, base, disp, imm);
    }

    // --- GPR ------------------------------------------------------------

    void push(int r)
    {
        if (r & 8)
            u8(0x41);
        u8(static_cast<std::uint8_t>(0x50 | (r & 7)));
    }

    void pop(int r)
    {
        if (r & 8)
            u8(0x41);
        u8(static_cast<std::uint8_t>(0x58 | (r & 7)));
    }

    /** mov dst64, src64. */
    void movRR64(int dst, int src)
    {
        u8(static_cast<std::uint8_t>(0x48 | ((src & 8) ? 4 : 0) |
                                     ((dst & 8) ? 1 : 0)));
        u8(0x89);
        u8(modRR(src, dst));
    }

    /** mov dst32, src32 (zero-extends to 64 bits). */
    void movRR32(int dst, int src)
    {
        rex(false, src, dst);
        u8(0x89);
        u8(modRR(src, dst));
    }

    /** mov r64, imm64. */
    void movRI64(int r, std::uint64_t imm)
    {
        u8(static_cast<std::uint8_t>(0x48 | ((r & 8) ? 1 : 0)));
        u8(static_cast<std::uint8_t>(0xB8 | (r & 7)));
        u64(imm);
    }

    /** mov r32, imm32 (zero-extends). */
    void movRI32(int r, std::uint32_t imm)
    {
        if (r & 8)
            u8(0x41);
        u8(static_cast<std::uint8_t>(0xB8 | (r & 7)));
        u32(imm);
    }

    /** lea dst64, [base + disp]. */
    void lea(int dst, int base, std::int32_t disp)
    {
        u8(static_cast<std::uint8_t>(0x48 | ((dst & 8) ? 4 : 0) |
                                     ((base & 8) ? 1 : 0)));
        u8(0x8D);
        mem(dst, base, disp);
    }

    void subRsp(std::int32_t n)
    {
        u8(0x48);
        u8(0x81);
        u8(0xEC);
        u32(static_cast<std::uint32_t>(n));
    }

    void addRsp(std::int32_t n)
    {
        u8(0x48);
        u8(0x81);
        u8(0xC4);
        u32(static_cast<std::uint32_t>(n));
    }

    /** Low-GPR (no REX) 32-bit ALU forms — enough for the kill mask. */
    void xorR32(int dst, int src)
    {
        u8(0x31);
        u8(modRR(src, dst));
    }
    void orR32(int dst, int src)
    {
        u8(0x09);
        u8(modRR(src, dst));
    }
    void testR32(int a, int b)
    {
        u8(0x85);
        u8(modRR(b, a));
    }
    void setne8(int r)
    {
        u8(0x0F);
        u8(0x95);
        u8(static_cast<std::uint8_t>(0xC0 | (r & 7)));
    }
    void movzx32From8(int dst, int src)
    {
        u8(0x0F);
        u8(0xB6);
        u8(modRR(dst, src));
    }
    void shlR32(int r, std::uint8_t n)
    {
        u8(0xC1);
        u8(static_cast<std::uint8_t>(0xE0 | (r & 7)));
        u8(n);
    }

    void callReg(int r)
    {
        if (r & 8)
            u8(0x41);
        u8(0xFF);
        u8(static_cast<std::uint8_t>(0xD0 | (r & 7)));
    }

    void ret() { u8(0xC3); }

    /** jz rel32 with the target unknown; @return the fixup position. */
    std::size_t
    jzForward()
    {
        u8(0x0F);
        u8(0x84);
        std::size_t pos = code.size();
        u32(0);
        return pos;
    }

    /** Point a jzForward() at the current position. */
    void
    patchForward(std::size_t pos)
    {
        std::uint32_t rel =
            static_cast<std::uint32_t>(code.size() - (pos + 4));
        for (int i = 0; i < 4; ++i)
            code[pos + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(rel >> (8 * i));
    }

  private:
    static std::uint8_t
    modRR(int reg, int rm)
    {
        return static_cast<std::uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    /** Optional REX for reg-field @p reg and rm/base @p rm. */
    void
    rex(bool w, int reg, int rm)
    {
        std::uint8_t r = static_cast<std::uint8_t>(
            0x40 | (w ? 8 : 0) | ((reg & 8) ? 4 : 0) | ((rm & 8) ? 1 : 0));
        if (r != 0x40)
            u8(r);
    }

    /** ModRM (+SIB, +disp) for [base + disp]. */
    void
    mem(int reg, int base, std::int32_t disp)
    {
        int b = base & 7;
        bool sib = b == 4; // RSP/R12 need a SIB byte
        int mod;
        if (disp == 0 && b != 5)
            mod = 0; // no disp (RBP/R13 can't use mod 00)
        else if (disp >= -128 && disp <= 127)
            mod = 1;
        else
            mod = 2;
        u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) |
                                     (sib ? 4 : b)));
        if (sib)
            u8(0x24); // scale 0, no index, base = rsp/r12
        if (mod == 1)
            u8(static_cast<std::uint8_t>(disp));
        else if (mod == 2)
            u32(static_cast<std::uint32_t>(disp));
    }

    void
    sseRR(std::uint8_t op, int dst, int src)
    {
        rex(false, dst, src);
        u8(0x0F);
        u8(op);
        u8(modRR(dst, src));
    }

    void
    sseRM(std::uint8_t op, int reg, int base, std::int32_t disp)
    {
        rex(false, reg, base);
        u8(0x0F);
        u8(op);
        mem(reg, base, disp);
    }

    void
    sse4RR(std::uint8_t op, int dst, int src, std::uint8_t imm)
    {
        u8(0x66);
        rex(false, dst, src);
        u8(0x0F);
        u8(0x3A);
        u8(op);
        u8(modRR(dst, src));
        u8(imm);
    }

    void
    sse4RM(std::uint8_t op, int reg, int base, std::int32_t disp,
           std::uint8_t imm)
    {
        u8(0x66);
        rex(false, reg, base);
        u8(0x0F);
        u8(0x3A);
        u8(op);
        mem(reg, base, disp);
        u8(imm);
    }
};

} // namespace wc3d::shader::jit

#endif // WC3D_SHADER_JIT_EMITTER_HH
