/**
 * @file
 * C-ABI trampolines the generated kernels call back into. Declared in
 * a shared internal header so the translator (which bakes their
 * addresses into the code stream) and the definitions in jit.cc agree
 * on the signatures. extern "C" keeps the symbols un-mangled, though
 * the JIT calls them by absolute address, not by name.
 */

#ifndef WC3D_SHADER_JIT_RUNTIME_HH
#define WC3D_SHADER_JIT_RUNTIME_HH

#include <cstdint>
#include <string>

#include "common/vecmath.hh"
#include "shader/jit/emitter.hh"
#include "shader/jit/jit.hh"

extern "C" {

/** TEX/TXP/TXB: forward one per-quad sample request to the handler.
 *  Coordinate projection and bias extraction happen in generated code
 *  beforehand, so call order and arguments match the decoded
 *  interpreter exactly (sampler statistics depend on it). */
void wc3dJitSampleQuad(wc3d::shader::jit::CallCtx *ctx, int sampler,
                       const wc3d::Vec4 *coords, float lod_bias,
                       wc3d::Vec4 *out);

/** Quad KIL: apply the taken-kill mask (bit l = lane l's condition)
 *  with the decoded path's bookkeeping — a take counts only for lanes
 *  that are covered and not already killed. */
void wc3dJitKillQuad(wc3d::shader::jit::CallCtx *ctx, std::uint64_t mask);

/** Single-lane KIL: run() counts every taken KIL, even on a lane that
 *  is already killed — different from the quad rule above. */
void wc3dJitKillLane(wc3d::shader::jit::CallCtx *ctx);

/** Transcendental / irregular ALU ops: evaluate via the shared
 *  aluResult() core so libm-dependent results (exp2, log2, pow, the
 *  pinned minf/maxf in LIT) are bit-identical to the interpreter. @p b
 *  is read only by the two-operand ops. */
void wc3dJitAluEx2(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);
void wc3dJitAluLg2(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);
void wc3dJitAluPow(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);
void wc3dJitAluNrm(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);
void wc3dJitAluXpd(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);
void wc3dJitAluDst(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);
void wc3dJitAluLit(wc3d::Vec4 *d, const wc3d::Vec4 *a, const wc3d::Vec4 *b);

} // extern "C"

namespace wc3d::shader::jit {

/**
 * Literal pool layout, placed at the base of every program's code
 * block (16-byte aligned; the translator reaches it through a pinned
 * register).
 */
constexpr std::int32_t kPoolZero = 0x00;    ///< {0, 0, 0, 0}
constexpr std::int32_t kPoolOne = 0x10;     ///< {1, 1, 1, 1}
constexpr std::int32_t kPoolAbsMask = 0x20; ///< 0x7fffffff lanes
constexpr std::int32_t kPoolNegOne = 0x30;  ///< {-1, -1, -1, -1}
constexpr std::int32_t kPoolBytes = 0x40;

/**
 * Emit one kernel for @p dec into @p e. @p lanes is 4 (quad kernel)
 * or 1 (single-lane kernel; rejects texture programs). @p pool_addr
 * is the absolute address the literal pool will live at. @return false
 * with @p why set when the program can't be translated.
 */
bool emitKernel(Emitter &e, const shader::DecodedProgram &dec, int lanes,
                std::uint64_t pool_addr, std::string *why);

} // namespace wc3d::shader::jit

#endif // WC3D_SHADER_JIT_RUNTIME_HH
