#include "shader/jit/jit.hh"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/env.hh"
#include "common/log.hh"
#include "common/prof.hh"
#include "common/strutil.hh"
#include "shader/alucore.hh"
#include "shader/decoded.hh"
#include "shader/jit/emitter.hh"
#include "shader/jit/runtime.hh"
#include "shader/program.hh"

// --- C-ABI trampolines (called from generated code by address) ----------

using wc3d::Vec4;
using wc3d::shader::jit::CallCtx;

extern "C" void
wc3dJitSampleQuad(CallCtx *ctx, int sampler, const Vec4 *coords,
                  float lod_bias, Vec4 *out)
{
    WC3D_ASSERT(ctx->handler &&
                "texture instruction without a sampler handler");
    ctx->handler->sampleQuad(sampler, coords, lod_bias, out);
}

extern "C" void
wc3dJitKillQuad(CallCtx *ctx, std::uint64_t mask)
{
    wc3d::shader::QuadState *quad = ctx->quad;
    for (int l = 0; l < 4; ++l) {
        if (!(mask & (1ull << l)))
            continue;
        if (!quad->lanes[l].killed && quad->covered[l])
            ++ctx->kills;
        quad->lanes[l].killed = true;
    }
}

extern "C" void
wc3dJitKillLane(CallCtx *ctx)
{
    ctx->lane->killed = true;
    ++ctx->kills;
}

#define WC3D_JIT_ALU_HELPER(NAME, OP)                                        \
    extern "C" void NAME(Vec4 *d, const Vec4 *a, const Vec4 *b)              \
    {                                                                        \
        *d = wc3d::shader::aluResult(wc3d::shader::Opcode::OP, *a, *b,       \
                                     Vec4());                                \
    }

WC3D_JIT_ALU_HELPER(wc3dJitAluEx2, EX2)
WC3D_JIT_ALU_HELPER(wc3dJitAluLg2, LG2)
WC3D_JIT_ALU_HELPER(wc3dJitAluPow, POW)
WC3D_JIT_ALU_HELPER(wc3dJitAluNrm, NRM)
WC3D_JIT_ALU_HELPER(wc3dJitAluXpd, XPD)
WC3D_JIT_ALU_HELPER(wc3dJitAluDst, DST)
WC3D_JIT_ALU_HELPER(wc3dJitAluLit, LIT)

#undef WC3D_JIT_ALU_HELPER

namespace wc3d::shader::jit {

namespace {

// enabled() tri-state: -1 = derive from WC3D_JIT on first use.
std::atomic<int> gEnabled{-1};

std::mutex gStatsMutex;
Stats gStats;

std::once_flag gUnavailableWarn;
std::once_flag gCompileFailWarn;

bool
detectHost()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("sse4.1") != 0;
#else
    return false;
#endif
}

bool
deriveFromEnv()
{
    bool want = envInt("WC3D_JIT", 1) != 0;
    if (!want)
        return false;
    if (!available()) {
        // Only worth a warning when the user explicitly asked for the
        // JIT; the default-on case degrades silently on non-x86 hosts.
        if (!envString("WC3D_JIT", "").empty()) {
            std::call_once(gUnavailableWarn, [] {
                warn("shader jit: WC3D_JIT requested but this host has "
                     "no x86-64 SSE4.1 support; using the decoded "
                     "interpreter");
            });
        }
        return false;
    }
    return true;
}

/** Generous per-op upper bound on emitted bytes (widest case: a
 *  three-operand helper op with swizzle+abs+negate on every source and
 *  a saturated partial store, per lane). Checked after emission. */
constexpr std::size_t kBytesPerOpLane = 320;
constexpr std::size_t kKernelOverhead = 128;

std::size_t
estimateBytes(const DecodedProgram &dec)
{
    std::size_t ops = dec.ops().size();
    std::size_t quad = kKernelOverhead + ops * 4 * kBytesPerOpLane;
    std::size_t lane =
        dec.hasTexture() ? 0 : kKernelOverhead + ops * kBytesPerOpLane;
    return static_cast<std::size_t>(kPoolBytes) + quad + lane;
}

void
fillError(JitError *err, const char *stage, std::string reason)
{
    if (err) {
        err->stage = stage;
        err->reason = std::move(reason);
    }
}

std::shared_ptr<const JitProgram>
fallback(JitError *err, const char *stage, std::string reason)
{
    fillError(err, stage, reason);
    {
        std::lock_guard<std::mutex> lock(gStatsMutex);
        ++gStats.fallbacks;
    }
    std::call_once(gCompileFailWarn, [&] {
        warn("shader jit: compile failed (%s: %s); falling back to the "
             "decoded interpreter",
             stage, reason.c_str());
    });
    return nullptr;
}

} // namespace

std::string
JitError::describe() const
{
    return format("jit %s: %s", stage.c_str(), reason.c_str());
}

bool
available()
{
    static const bool ok = detectHost();
    return ok;
}

bool
enabled()
{
    int v = gEnabled.load(std::memory_order_relaxed);
    if (v < 0) {
        v = deriveFromEnv() ? 1 : 0;
        gEnabled.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

void
setEnabled(bool on)
{
    gEnabled.store(on && available() ? 1 : 0, std::memory_order_relaxed);
}

void
resetFromEnv()
{
    gEnabled.store(-1, std::memory_order_relaxed);
}

Stats
stats()
{
    std::lock_guard<std::mutex> lock(gStatsMutex);
    return gStats;
}

void
resetStats()
{
    std::lock_guard<std::mutex> lock(gStatsMutex);
    gStats = Stats();
}

std::shared_ptr<const JitProgram>
compile(const Program &program, JitError *err)
{
    WC3D_PROF_SCOPE("shader.jit.compile");
    auto start = std::chrono::steady_clock::now();

    if (!available())
        return fallback(err, "detect", "host lacks x86-64 SSE4.1");

    const DecodedProgram &dec = program.decoded();
    faultio::IoError io;
    ExecMemory mem =
        ExecMemory::map(estimateBytes(dec), "shader-jit-code", &io);
    if (!mem.valid())
        return fallback(err, "mmap", io.describe());

    // Literal pool at the block base (already 16-byte aligned).
    static const float kPool[16] = {
        0.0f, 0.0f, 0.0f, 0.0f, // kPoolZero
        1.0f, 1.0f, 1.0f, 1.0f, // kPoolOne
        0.0f, 0.0f, 0.0f, 0.0f, // kPoolAbsMask, patched below
        -1.0f, -1.0f, -1.0f, -1.0f, // kPoolNegOne
    };
    std::memcpy(mem.data(), kPool, sizeof(kPool));
    const std::uint32_t abs_mask = 0x7fffffffu;
    for (int i = 0; i < 4; ++i) {
        std::memcpy(mem.data() + kPoolAbsMask +
                        static_cast<std::size_t>(i) * 4,
                    &abs_mask, 4);
    }
    std::uint64_t pool_addr = reinterpret_cast<std::uint64_t>(mem.data());

    std::string why;
    Emitter quad;
    if (!emitKernel(quad, dec, 4, pool_addr, &why))
        return fallback(err, "translate", why);

    Emitter lane;
    bool has_lane = !dec.hasTexture();
    if (has_lane && !emitKernel(lane, dec, 1, pool_addr, &why))
        return fallback(err, "translate", why);

    // Lay out: [pool][quad kernel][lane kernel], 16-byte aligned.
    std::size_t quad_off = static_cast<std::size_t>(kPoolBytes);
    std::size_t lane_off_raw = quad_off + quad.code.size();
    lane_off_raw = (lane_off_raw + 15) & ~static_cast<std::size_t>(15);
    std::size_t total = lane_off_raw + (has_lane ? lane.code.size() : 0);
    if (total > mem.size()) {
        return fallback(err, "translate",
                        format("code estimate too small: %zu > %zu bytes",
                               total, mem.size()));
    }
    std::memcpy(mem.data() + quad_off, quad.code.data(), quad.code.size());
    if (has_lane) {
        std::memcpy(mem.data() + lane_off_raw, lane.code.data(),
                    lane.code.size());
    }

    if (!mem.seal(&io))
        return fallback(err, "mprotect", io.describe());

    std::uint32_t op_count =
        static_cast<std::uint32_t>(dec.ops().size());
    std::uint32_t tex_count = 0;
    for (const DecodedOp &op : dec.ops()) {
        if (op.op == Opcode::TEX || op.op == Opcode::TXP ||
            op.op == Opcode::TXB) {
            ++tex_count;
        }
    }

    std::size_t code_bytes =
        quad.code.size() + (has_lane ? lane.code.size() : 0);
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    {
        std::lock_guard<std::mutex> lock(gStatsMutex);
        ++gStats.programsCompiled;
        gStats.compileSeconds += seconds;
        gStats.codeBytes += code_bytes;
    }

    return std::make_shared<const JitProgram>(
        std::move(mem), quad_off, has_lane ? lane_off_raw : 0, op_count,
        tex_count, code_bytes);
}

} // namespace wc3d::shader::jit

namespace wc3d::shader {

const jit::JitProgram *
Program::jitted() const
{
    // Same lazy, non-atomic cache discipline as decoded(): the first
    // call must happen on the owning thread (the simulator pre-compiles
    // bound programs at the top of each draw); afterwards concurrent
    // readers are safe. Failure is cached so hot paths don't retry a
    // broken compile per quad.
    if (!jit::enabled())
        return nullptr;
    if (_jitState == 0) {
        jit::JitError err;
        _jit = jit::compile(*this, &err);
        _jitState = _jit ? 1 : 2;
    }
    return _jitState == 1 ? _jit.get() : nullptr;
}

} // namespace wc3d::shader
