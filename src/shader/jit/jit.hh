/**
 * @file
 * Per-program x86-64 shader JIT. compile() consumes a Program's
 * pre-decoded form (shader/decoded.hh) — operand files, swizzle plans
 * and modifier flags are already resolved there, which makes it the
 * ideal translation input — and emits two native kernels into one
 * W^X-sealed executable block:
 *
 *   - a quad kernel shading all four lanes of a QuadState (the unit
 *     every rasterizer path and per-tile worker feeds the interpreter),
 *   - a single-lane kernel for vertex shading (omitted for programs
 *     with texture instructions, which require quad execution).
 *
 * Straight-line SSE covers the whole ALU; the transcendental tail
 * (EX2/LG2/POW/NRM/XPD/DST/LIT) and texture sampling call back into
 * C++ helpers that share aluResult() / sampleQuad() with the decoded
 * interpreter, so results, sampler call order and all pipeline
 * statistics are bit-identical to the decoded path by construction.
 *
 * Programs cache their compiled form exactly like the decode cache
 * (Program::jitted(), invalidated by emit()). Compilation failure is a
 * structured JitError, logged once and counted in stats().fallbacks;
 * execution then degrades to the decoded interpreter. Nothing here
 * calls fatal().
 */

#ifndef WC3D_SHADER_JIT_JIT_HH
#define WC3D_SHADER_JIT_JIT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/execmem.hh"
#include "common/vecmath.hh"
#include "shader/interp.hh"

namespace wc3d::shader::jit {

/** One failed compilation: which stage gave up, and why. */
struct JitError
{
    std::string stage;  ///< "detect", "translate", "mmap", "mprotect"
    std::string reason;

    /** @return a one-line human-readable description. */
    std::string describe() const;
};

/**
 * Per-call context handed to every kernel invocation. The generated
 * code never dereferences it; only the C++ helper trampolines (texture
 * sampling, KIL bookkeeping) do, so its layout is not ABI-frozen into
 * the emitted code beyond "a pointer".
 */
struct CallCtx
{
    TextureSampleHandler *handler = nullptr; ///< texture sink (quad runs)
    QuadState *quad = nullptr;               ///< current quad (quad runs)
    LaneState *lane = nullptr;               ///< current lane (lane runs)
    std::uint64_t kills = 0;                 ///< KIL takes, caller-accumulated
};

/** A compiled program: sealed code plus the static op counts the
 *  interpreter needs to charge statistics without walking the ops. */
class JitProgram
{
  public:
    using QuadFn = void (*)(QuadState *, const Vec4 *, CallCtx *);
    using LaneFn = void (*)(LaneState *, const Vec4 *, CallCtx *);

    JitProgram(ExecMemory mem, std::size_t quad_off, std::size_t lane_off,
               std::uint32_t op_count, std::uint32_t tex_op_count,
               std::size_t code_bytes)
        : _mem(std::move(mem)), _quadOff(quad_off), _laneOff(lane_off),
          _opCount(op_count), _texOpCount(tex_op_count),
          _codeBytes(code_bytes)
    {
    }

    JitProgram(const JitProgram &) = delete;
    JitProgram &operator=(const JitProgram &) = delete;

    /** Quad-major kernel; always present. */
    QuadFn
    quadKernel() const
    {
        return reinterpret_cast<QuadFn>(_mem.data() + _quadOff);
    }

    /** Single-lane kernel, or nullptr for texture programs. */
    LaneFn
    laneKernel() const
    {
        if (_laneOff == 0)
            return nullptr;
        return reinterpret_cast<LaneFn>(_mem.data() + _laneOff);
    }

    std::uint32_t opCount() const { return _opCount; }
    std::uint32_t texOpCount() const { return _texOpCount; }
    std::size_t codeBytes() const { return _codeBytes; }

  private:
    ExecMemory _mem;
    std::size_t _quadOff;
    std::size_t _laneOff; ///< 0 = no lane kernel
    std::uint32_t _opCount;
    std::uint32_t _texOpCount;
    std::size_t _codeBytes;
};

/** @return true when this host can run JIT'd kernels (x86-64 build
 *  with SSE4.1 detected at runtime). */
bool available();

/**
 * @return true when JIT execution is on: available() and not disabled
 * by WC3D_JIT=0 (default on) or setEnabled(false). When WC3D_JIT
 * explicitly requests the JIT on a host where it is unavailable, a
 * warning is logged once and execution stays on the decoded
 * interpreter.
 */
bool enabled();

/** Programmatic override (tests, benchmarks). Forcing true on a host
 *  where available() is false leaves the JIT off. */
void setEnabled(bool on);

/** Drop the programmatic override and re-derive enabled() from the
 *  WC3D_JIT environment knob. */
void resetFromEnv();

/** Process-wide compile-time counters, published in the runmeta "jit"
 *  block and the CI runmeta artifact. */
struct Stats
{
    std::uint64_t programsCompiled = 0;
    double compileSeconds = 0.0;
    std::uint64_t fallbacks = 0;   ///< failed compiles (decoded path used)
    std::uint64_t codeBytes = 0;   ///< emitted machine code, summed
};

Stats stats();

/** Zero the process-wide counters (tests). */
void resetStats();

/**
 * Compile @p program's decoded form to native code. Wrapped in a
 * "shader.jit.compile" prof span and accounted in stats(). @return
 * nullptr with @p err filled (when non-null) on any failure; the first
 * failure per process is also logged via warn().
 */
std::shared_ptr<const JitProgram> compile(const Program &program,
                                          JitError *err);

} // namespace wc3d::shader::jit

#endif // WC3D_SHADER_JIT_JIT_HH
