#include "shader/assemble.hh"

#include <cctype>
#include <cstdlib>

#include "common/strutil.hh"

namespace wc3d::shader {

namespace {

/** Minimal recursive-descent scanner over one statement. */
struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    eat(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos >= text.size();
    }

    std::string
    ident()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '_'))
            ++pos;
        return text.substr(start, pos - start);
    }

    std::optional<int>
    number()
    {
        skipSpace();
        std::size_t start = pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == start)
            return std::nullopt;
        return std::atoi(text.substr(start, pos - start).c_str());
    }

    std::optional<float>
    floatNumber()
    {
        skipSpace();
        const char *begin = text.c_str() + pos;
        char *end = nullptr;
        float v = std::strtof(begin, &end);
        if (end == begin)
            return std::nullopt;
        pos += static_cast<std::size_t>(end - begin);
        return v;
    }
};

bool
compFromChar(char c, std::uint8_t &out)
{
    switch (std::tolower(static_cast<unsigned char>(c))) {
      case 'x': case 'r':
        out = kCompX;
        return true;
      case 'y': case 'g':
        out = kCompY;
        return true;
      case 'z': case 'b':
        out = kCompZ;
        return true;
      case 'w': case 'a':
        out = kCompW;
        return true;
      default:
        return false;
    }
}

bool
parseRegister(const std::string &name, RegFile &file, int &index,
              std::string &error)
{
    if (name.size() < 2) {
        error = "bad register '" + name + "'";
        return false;
    }
    switch (std::tolower(static_cast<unsigned char>(name[0]))) {
      case 'v':
        file = RegFile::Input;
        break;
      case 'r':
        file = RegFile::Temp;
        break;
      case 'c':
        file = RegFile::Const;
        break;
      case 'o':
        file = RegFile::Output;
        break;
      default:
        error = "unknown register file in '" + name + "'";
        return false;
    }
    index = std::atoi(name.c_str() + 1);
    int limit = file == RegFile::Input ? kMaxInputs :
                file == RegFile::Temp ? kMaxTemps :
                file == RegFile::Const ? kMaxConsts : kMaxOutputs;
    if (index < 0 || index >= limit) {
        error = "register index out of range in '" + name + "'";
        return false;
    }
    return true;
}

bool
parseSwizzleText(const std::string &sw, std::uint8_t &out,
                 std::string &error)
{
    if (sw.empty() || sw.size() > 4) {
        error = "bad swizzle '." + sw + "'";
        return false;
    }
    std::uint8_t comps[4];
    for (std::size_t i = 0; i < 4; ++i) {
        char c = sw[i < sw.size() ? i : sw.size() - 1]; // replicate last
        if (!compFromChar(c, comps[i])) {
            error = "bad swizzle component '" + std::string(1, c) + "'";
            return false;
        }
    }
    out = packSwizzle(comps[0], comps[1], comps[2], comps[3]);
    return true;
}

bool
parseMaskText(const std::string &mask, std::uint8_t &out,
              std::string &error)
{
    out = 0;
    for (char c : mask) {
        std::uint8_t comp;
        if (!compFromChar(c, comp)) {
            error = "bad write mask '." + mask + "'";
            return false;
        }
        out |= static_cast<std::uint8_t>(1u << comp);
    }
    if (out == 0) {
        error = "empty write mask";
        return false;
    }
    return true;
}

bool
parseSrc(Parser &p, SrcOperand &src)
{
    p.skipSpace();
    src = SrcOperand();
    if (p.eat('-'))
        src.negate = true;
    bool has_abs = p.eat('|');
    std::string reg = p.ident();
    RegFile file;
    int index;
    if (!parseRegister(reg, file, index, p.error))
        return false;
    if (file == RegFile::Output) {
        p.error = "outputs are write-only";
        return false;
    }
    src.file = file;
    src.index = static_cast<std::uint8_t>(index);
    src.absolute = has_abs;
    if (has_abs && !p.eat('|')) {
        p.error = "unterminated |reg|";
        return false;
    }
    if (p.eat('.')) {
        std::string sw = p.ident();
        if (!parseSwizzleText(sw, src.swizzle, p.error))
            return false;
    }
    return true;
}

bool
parseDst(Parser &p, DstOperand &dst, bool saturate_flag)
{
    std::string reg = p.ident();
    RegFile file;
    int index;
    if (!parseRegister(reg, file, index, p.error))
        return false;
    if (file != RegFile::Temp && file != RegFile::Output) {
        p.error = "destination must be a temp or output register";
        return false;
    }
    dst = DstOperand();
    dst.file = file;
    dst.index = static_cast<std::uint8_t>(index);
    dst.saturate = saturate_flag;
    if (p.eat('.')) {
        std::string mask = p.ident();
        if (!parseMaskText(mask, dst.writeMask, p.error))
            return false;
    }
    return true;
}

} // namespace

AssembleResult
assemble(const std::string &source, ProgramKind kind,
         const std::string &name)
{
    AssembleResult result;
    Program program(kind, name);
    bool kind_set = false;

    int line_no = 0;
    for (const std::string &raw : split(source, '\n')) {
        ++line_no;
        std::string line = raw;
        // Strip comments.
        for (const char *marker : {"#", "//"}) {
            auto cpos = line.find(marker);
            if (cpos != std::string::npos)
                line = line.substr(0, cpos);
        }
        line = trim(line);
        if (line.empty())
            continue;
        if (!line.empty() && line.back() == ';')
            line.pop_back();
        line = trim(line);
        if (line.empty())
            continue;

        // Header: !!VP / !!FP ... (rest of the line is decorative).
        if (startsWith(line, "!!")) {
            if (!kind_set) {
                std::string tag = toLower(line.substr(2, 2));
                program = Program(tag == "vp" ? ProgramKind::Vertex
                                              : ProgramKind::Fragment,
                                  name);
                kind_set = true;
            }
            continue;
        }

        Parser p(line);
        std::string mnemonic = p.ident();

        // Constant initialiser: CONST cN = a b c d
        if (toLower(mnemonic) == "const") {
            std::string reg = p.ident();
            RegFile file;
            int index;
            if (!parseRegister(reg, file, index, p.error) ||
                file != RegFile::Const) {
                result.error = format("line %d: CONST needs a c# register",
                                      line_no);
                return result;
            }
            if (!p.eat('=')) {
                result.error = format("line %d: CONST missing '='", line_no);
                return result;
            }
            Vec4 v;
            for (int i = 0; i < 4; ++i) {
                auto f = p.floatNumber();
                if (!f) {
                    result.error = format(
                        "line %d: CONST needs four floats", line_no);
                    return result;
                }
                v[static_cast<std::size_t>(i)] = *f;
            }
            program.setConstant(index, v);
            continue;
        }

        bool saturate_flag = false;
        std::string up = toLower(mnemonic);
        if (up.size() > 4 && up.substr(up.size() - 4) == "_sat") {
            saturate_flag = true;
            mnemonic = mnemonic.substr(0, mnemonic.size() - 4);
        }

        Opcode op;
        if (!opcodeFromName(mnemonic, op)) {
            result.error = format("line %d: unknown opcode '%s'", line_no,
                                  mnemonic.c_str());
            return result;
        }
        const OpcodeInfo &info = opcodeInfo(op);

        Instruction instr;
        instr.op = op;
        if (info.hasDst) {
            if (!parseDst(p, instr.dst, saturate_flag)) {
                result.error = format("line %d: %s", line_no,
                                      p.error.c_str());
                return result;
            }
        }
        for (int s = 0; s < info.numSrcs; ++s) {
            if ((info.hasDst || s > 0) && !p.eat(',')) {
                result.error = format("line %d: expected ','", line_no);
                return result;
            }
            if (!parseSrc(p, instr.src[s])) {
                result.error = format("line %d: %s", line_no,
                                      p.error.c_str());
                return result;
            }
        }
        if (info.isTexture) {
            if (!p.eat(',')) {
                result.error = format("line %d: texture op needs ', tex[N]'",
                                      line_no);
                return result;
            }
            std::string tex_kw = toLower(p.ident());
            auto unit = (tex_kw == "tex" && p.eat('['))
                            ? p.number() : std::nullopt;
            if (!unit || !p.eat(']') || *unit < 0 ||
                *unit >= kMaxSamplers) {
                result.error = format("line %d: bad texture unit", line_no);
                return result;
            }
            instr.sampler = static_cast<std::uint8_t>(*unit);
        }
        if (!p.atEnd()) {
            result.error = format("line %d: trailing characters", line_no);
            return result;
        }
        program.emit(instr);
    }

    result.ok = true;
    result.program = std::move(program);
    return result;
}

} // namespace wc3d::shader
