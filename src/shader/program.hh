/**
 * @file
 * Shader program container with a fluent builder API, static instruction
 * statistics (total / ALU / texture counts, the quantities of the paper's
 * Tables IV and XII) and a disassembler.
 */

#ifndef WC3D_SHADER_PROGRAM_HH
#define WC3D_SHADER_PROGRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/vecmath.hh"
#include "shader/isa.hh"

namespace wc3d::shader {

class DecodedProgram;

namespace jit {
class JitProgram;
}

/** Kind of pipeline stage a program targets. */
enum class ProgramKind
{
    Vertex,
    Fragment,
};

/** Convenience constructors for operands. */
SrcOperand srcInput(int index, std::uint8_t swizzle = kSwizzleXYZW);
SrcOperand srcTemp(int index, std::uint8_t swizzle = kSwizzleXYZW);
SrcOperand srcConst(int index, std::uint8_t swizzle = kSwizzleXYZW);
SrcOperand negate(SrcOperand s);
DstOperand dstTemp(int index, std::uint8_t mask = kMaskXYZW);
DstOperand dstOutput(int index, std::uint8_t mask = kMaskXYZW);
DstOperand saturate(DstOperand d);

/**
 * A compiled shader program: an instruction vector plus a constant bank.
 *
 * Builder methods return *this so programs can be written fluently:
 * @code
 *     Program p(ProgramKind::Fragment, "lit");
 *     p.tex(dstTemp(0), srcInput(1), 0)
 *      .mul(dstOutput(0), srcTemp(0), srcInput(2));
 * @endcode
 */
class Program
{
  public:
    Program() = default;
    Program(ProgramKind kind, std::string name);

    ProgramKind kind() const { return _kind; }
    const std::string &name() const { return _name; }

    /** Append a fully formed instruction. */
    Program &emit(const Instruction &instr);

    /** @name Builder helpers (one per opcode family) */
    /// @{
    Program &mov(DstOperand d, SrcOperand a);
    Program &add(DstOperand d, SrcOperand a, SrcOperand b);
    Program &sub(DstOperand d, SrcOperand a, SrcOperand b);
    Program &mul(DstOperand d, SrcOperand a, SrcOperand b);
    Program &mad(DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c);
    Program &dp3(DstOperand d, SrcOperand a, SrcOperand b);
    Program &dp4(DstOperand d, SrcOperand a, SrcOperand b);
    Program &rcp(DstOperand d, SrcOperand a);
    Program &rsq(DstOperand d, SrcOperand a);
    Program &minOp(DstOperand d, SrcOperand a, SrcOperand b);
    Program &maxOp(DstOperand d, SrcOperand a, SrcOperand b);
    Program &slt(DstOperand d, SrcOperand a, SrcOperand b);
    Program &sge(DstOperand d, SrcOperand a, SrcOperand b);
    Program &frc(DstOperand d, SrcOperand a);
    Program &flr(DstOperand d, SrcOperand a);
    Program &absOp(DstOperand d, SrcOperand a);
    Program &ex2(DstOperand d, SrcOperand a);
    Program &lg2(DstOperand d, SrcOperand a);
    Program &pow(DstOperand d, SrcOperand a, SrcOperand b);
    Program &lrp(DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c);
    Program &cmp(DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c);
    Program &nrm(DstOperand d, SrcOperand a);
    Program &xpd(DstOperand d, SrcOperand a, SrcOperand b);
    Program &tex(DstOperand d, SrcOperand coord, int sampler);
    Program &txp(DstOperand d, SrcOperand coord, int sampler);
    Program &txb(DstOperand d, SrcOperand coord, int sampler);
    Program &kil(SrcOperand a);
    /// @}

    const std::vector<Instruction> &code() const { return _code; }
    bool empty() const { return _code.empty(); }

    /** Total static instruction count. */
    int instructionCount() const { return static_cast<int>(_code.size()); }

    /** Static count of texture instructions (TEX/TXP/TXB), maintained
     *  by emit() so the per-draw statistics path is O(1). */
    int textureInstructionCount() const { return _texCount; }

    /** Static count of non-texture instructions. */
    int aluInstructionCount() const
    { return instructionCount() - textureInstructionCount(); }

    /** ALU:TEX ratio; +inf represented as 0 denominator -> returns ALU. */
    double aluToTexRatio() const;

    /** @return true when the program contains a KIL instruction. */
    bool usesKill() const;

    /** @return true when the program writes output register @p index. */
    bool writesOutput(int index) const;

    /** Constant bank (indexed by c# registers). */
    void setConstant(int index, Vec4 value);
    Vec4 constant(int index) const;
    const std::vector<Vec4> &constants() const { return _constants; }

    /** Render the program as assembly text (re-parseable). */
    std::string disassemble() const;

    /**
     * The pre-decoded execution form (see shader/decoded.hh), built on
     * first use and cached until the next emit(). Not synchronized:
     * trigger the first decode on one thread before sharing (the GPU
     * simulator pre-decodes bound programs at the top of each draw);
     * afterwards concurrent readers are safe.
     */
    const DecodedProgram &decoded() const;

    /**
     * The native x86-64 compiled form (see shader/jit/jit.hh), built on
     * first use and cached until the next emit() — keyed and
     * invalidated exactly like decoded(). @return nullptr when the JIT
     * is disabled (WC3D_JIT=0 or jit::setEnabled(false)), unavailable
     * on this host, or compilation failed (the structured JitError is
     * warned once and counted in jit::stats().fallbacks; failure is
     * cached too, so callers retry only after the next emit()).
     * Same synchronization contract as decoded(): trigger the first
     * compile on one thread before sharing.
     */
    const jit::JitProgram *jitted() const;

  private:
    ProgramKind _kind = ProgramKind::Vertex;
    std::string _name;
    std::vector<Instruction> _code;
    std::vector<Vec4> _constants = std::vector<Vec4>(kMaxConsts);
    int _texCount = 0;
    mutable std::shared_ptr<const DecodedProgram> _decoded;
    mutable std::shared_ptr<const jit::JitProgram> _jit;
    /** 0 = not attempted since last emit(), 1 = compiled, 2 = failed. */
    mutable std::uint8_t _jitState = 0;
};

/** Render one instruction as text ("MAD r0.xyz, v1, c2, -r3;"). */
std::string disassembleInstruction(const Instruction &instr);

} // namespace wc3d::shader

#endif // WC3D_SHADER_PROGRAM_HH
