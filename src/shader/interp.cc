#include "shader/interp.hh"

#include <cmath>

#include "common/log.hh"

namespace wc3d::shader {

namespace {

Vec4
applySwizzle(Vec4 v, std::uint8_t swizzle)
{
    return {v[swizzleComp(swizzle, 0)], v[swizzleComp(swizzle, 1)],
            v[swizzleComp(swizzle, 2)], v[swizzleComp(swizzle, 3)]};
}

Vec4
readSrc(const LaneState &lane, const Vec4 *constants, const SrcOperand &src)
{
    Vec4 v;
    switch (src.file) {
      case RegFile::Input:
        v = lane.inputs[src.index];
        break;
      case RegFile::Temp:
        v = lane.temps[src.index];
        break;
      case RegFile::Const:
        v = constants[src.index];
        break;
      case RegFile::Output:
        v = lane.outputs[src.index];
        break;
    }
    v = applySwizzle(v, src.swizzle);
    if (src.absolute) {
        v = {std::fabs(v.x), std::fabs(v.y), std::fabs(v.z),
             std::fabs(v.w)};
    }
    if (src.negate)
        v = v * -1.0f;
    return v;
}

void
writeDst(LaneState &lane, const DstOperand &dst, Vec4 value)
{
    Vec4 *reg = nullptr;
    switch (dst.file) {
      case RegFile::Temp:
        reg = &lane.temps[dst.index];
        break;
      case RegFile::Output:
        reg = &lane.outputs[dst.index];
        break;
      case RegFile::Input:
      case RegFile::Const:
        panic("shader: write to read-only register file");
    }
    if (dst.saturate) {
        value = {clampf(value.x, 0.0f, 1.0f), clampf(value.y, 0.0f, 1.0f),
                 clampf(value.z, 0.0f, 1.0f), clampf(value.w, 0.0f, 1.0f)};
    }
    if (dst.writeMask & kMaskX)
        reg->x = value.x;
    if (dst.writeMask & kMaskY)
        reg->y = value.y;
    if (dst.writeMask & kMaskZ)
        reg->z = value.z;
    if (dst.writeMask & kMaskW)
        reg->w = value.w;
}

/** Execute a non-texture instruction on one lane; returns kill flag. */
bool
execAlu(const Instruction &in, LaneState &lane, const Vec4 *constants)
{
    Vec4 a, b, c, r;
    const OpcodeInfo &info = opcodeInfo(in.op);
    if (info.numSrcs >= 1)
        a = readSrc(lane, constants, in.src[0]);
    if (info.numSrcs >= 2)
        b = readSrc(lane, constants, in.src[1]);
    if (info.numSrcs >= 3)
        c = readSrc(lane, constants, in.src[2]);

    switch (in.op) {
      case Opcode::MOV:
        r = a;
        break;
      case Opcode::ADD:
        r = a + b;
        break;
      case Opcode::SUB:
        r = a - b;
        break;
      case Opcode::MUL:
        r = {a.x * b.x, a.y * b.y, a.z * b.z, a.w * b.w};
        break;
      case Opcode::MAD:
        r = {a.x * b.x + c.x, a.y * b.y + c.y, a.z * b.z + c.z,
             a.w * b.w + c.w};
        break;
      case Opcode::DP3: {
        float d = a.x * b.x + a.y * b.y + a.z * b.z;
        r = {d, d, d, d};
        break;
      }
      case Opcode::DP4: {
        float d = a.dot(b);
        r = {d, d, d, d};
        break;
      }
      case Opcode::RCP: {
        float d = a.x != 0.0f ? 1.0f / a.x : 0.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::RSQ: {
        float s = std::fabs(a.x);
        float d = s > 0.0f ? 1.0f / std::sqrt(s) : 0.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::MIN:
        r = {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z),
             std::fmin(a.w, b.w)};
        break;
      case Opcode::MAX:
        r = {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z),
             std::fmax(a.w, b.w)};
        break;
      case Opcode::SLT:
        r = {a.x < b.x ? 1.0f : 0.0f, a.y < b.y ? 1.0f : 0.0f,
             a.z < b.z ? 1.0f : 0.0f, a.w < b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SGE:
        r = {a.x >= b.x ? 1.0f : 0.0f, a.y >= b.y ? 1.0f : 0.0f,
             a.z >= b.z ? 1.0f : 0.0f, a.w >= b.w ? 1.0f : 0.0f};
        break;
      case Opcode::FRC:
        r = {a.x - std::floor(a.x), a.y - std::floor(a.y),
             a.z - std::floor(a.z), a.w - std::floor(a.w)};
        break;
      case Opcode::FLR:
        r = {std::floor(a.x), std::floor(a.y), std::floor(a.z),
             std::floor(a.w)};
        break;
      case Opcode::ABS:
        r = {std::fabs(a.x), std::fabs(a.y), std::fabs(a.z),
             std::fabs(a.w)};
        break;
      case Opcode::EX2: {
        float d = std::exp2(a.x);
        r = {d, d, d, d};
        break;
      }
      case Opcode::LG2: {
        float d = a.x > 0.0f ? std::log2(a.x) : -126.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::POW: {
        float d = std::pow(std::fabs(a.x), b.x);
        r = {d, d, d, d};
        break;
      }
      case Opcode::LRP:
        r = {a.x * b.x + (1.0f - a.x) * c.x,
             a.y * b.y + (1.0f - a.y) * c.y,
             a.z * b.z + (1.0f - a.z) * c.z,
             a.w * b.w + (1.0f - a.w) * c.w};
        break;
      case Opcode::CMP:
        r = {a.x < 0.0f ? b.x : c.x, a.y < 0.0f ? b.y : c.y,
             a.z < 0.0f ? b.z : c.z, a.w < 0.0f ? b.w : c.w};
        break;
      case Opcode::NRM: {
        Vec3 n = a.xyz().normalized();
        r = {n.x, n.y, n.z, a.w};
        break;
      }
      case Opcode::XPD: {
        Vec3 x = a.xyz().cross(b.xyz());
        r = {x.x, x.y, x.z, 1.0f};
        break;
      }
      case Opcode::DST: {
        r = {1.0f, a.y * b.y, a.z, b.w};
        break;
      }
      case Opcode::LIT: {
        float diffuse = std::fmax(a.x, 0.0f);
        float specular = 0.0f;
        if (a.x > 0.0f) {
            float e = clampf(a.w, -128.0f, 128.0f);
            specular = std::pow(std::fmax(a.y, 0.0f), e);
        }
        r = {1.0f, diffuse, specular, 1.0f};
        break;
      }
      case Opcode::KIL: {
        if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f || a.w < 0.0f)
            return true;
        return false;
      }
      default:
        panic("shader: ALU executor got texture opcode %s",
              opcodeName(in.op));
    }
    writeDst(lane, in.dst, r);
    return false;
}

} // namespace

void
Interpreter::run(const Program &program, LaneState &lane)
{
    const Vec4 *constants = program.constants().data();
    for (const Instruction &in : program.code()) {
        WC3D_ASSERT(!opcodeInfo(in.op).isTexture &&
                    "texture sampling requires quad execution");
        ++_stats.instructionsExecuted;
        if (execAlu(in, lane, constants)) {
            lane.killed = true;
            ++_stats.killsTaken;
        }
    }
    ++_stats.programsRun;
}

void
Interpreter::runQuad(const Program &program, QuadState &quad,
                     TextureSampleHandler *tex_handler)
{
    const Vec4 *constants = program.constants().data();
    int covered = 0;
    for (int l = 0; l < 4; ++l)
        covered += quad.covered[l] ? 1 : 0;

    for (const Instruction &in : program.code()) {
        const OpcodeInfo &info = opcodeInfo(in.op);
        _stats.instructionsExecuted +=
            static_cast<std::uint64_t>(covered);
        if (info.isTexture) {
            _stats.textureInstructions +=
                static_cast<std::uint64_t>(covered);
            WC3D_ASSERT(tex_handler &&
                        "texture instruction without a sampler handler");
            Vec4 coords[4];
            float lod_bias = 0.0f;
            for (int l = 0; l < 4; ++l) {
                Vec4 c =
                    readSrc(quad.lanes[l], constants, in.src[0]);
                if (in.op == Opcode::TXP && c.w != 0.0f) {
                    c = {c.x / c.w, c.y / c.w, c.z / c.w, 1.0f};
                } else if (in.op == Opcode::TXB) {
                    // Per-quad bias comes from the first lane's w.
                    if (l == 0)
                        lod_bias = c.w;
                }
                coords[l] = c;
            }
            Vec4 out[4];
            tex_handler->sampleQuad(in.sampler, coords, lod_bias, out);
            for (int l = 0; l < 4; ++l)
                writeDst(quad.lanes[l], in.dst, out[l]);
        } else {
            for (int l = 0; l < 4; ++l) {
                if (execAlu(in, quad.lanes[l], constants)) {
                    if (!quad.lanes[l].killed && quad.covered[l])
                        ++_stats.killsTaken;
                    quad.lanes[l].killed = true;
                }
            }
        }
    }
    _stats.programsRun += static_cast<std::uint64_t>(covered);
}

} // namespace wc3d::shader
