#include "shader/interp.hh"

#include <cmath>

#include "common/log.hh"
#include "shader/decoded.hh"

/**
 * The per-instruction helpers below are large enough that the compiler
 * declines to inline them on its own, which would put an opaque call
 * (and a by-value Vec4 round-trip through memory) on every operand of
 * every interpreted instruction — and would stop the templated ALU
 * dispatch from constant-folding its opcode switch. Force the issue.
 */
#if defined(__GNUC__) || defined(__clang__)
#define WC3D_FORCE_INLINE inline __attribute__((always_inline))
#else
#define WC3D_FORCE_INLINE inline
#endif

namespace wc3d::shader {

namespace {

// ---------------------------------------------------------------------------
// Legacy reference interpreter: decodes shader::Instruction operands
// field-by-field on every execution. Kept bit-exact as the differential
// baseline for the pre-decoded hot path below.
// ---------------------------------------------------------------------------

Vec4
applySwizzle(Vec4 v, std::uint8_t swizzle)
{
    return {v[swizzleComp(swizzle, 0)], v[swizzleComp(swizzle, 1)],
            v[swizzleComp(swizzle, 2)], v[swizzleComp(swizzle, 3)]};
}

Vec4
readSrc(const LaneState &lane, const Vec4 *constants, const SrcOperand &src)
{
    Vec4 v;
    switch (src.file) {
      case RegFile::Input:
        v = lane.inputs[src.index];
        break;
      case RegFile::Temp:
        v = lane.temps[src.index];
        break;
      case RegFile::Const:
        v = constants[src.index];
        break;
      case RegFile::Output:
        v = lane.outputs[src.index];
        break;
    }
    v = applySwizzle(v, src.swizzle);
    if (src.absolute) {
        v = {std::fabs(v.x), std::fabs(v.y), std::fabs(v.z),
             std::fabs(v.w)};
    }
    if (src.negate)
        v = v * -1.0f;
    return v;
}

void
writeDst(LaneState &lane, const DstOperand &dst, Vec4 value)
{
    Vec4 *reg = nullptr;
    switch (dst.file) {
      case RegFile::Temp:
        reg = &lane.temps[dst.index];
        break;
      case RegFile::Output:
        reg = &lane.outputs[dst.index];
        break;
      case RegFile::Input:
      case RegFile::Const:
        panic("shader: write to read-only register file");
    }
    if (dst.saturate) {
        value = {clampf(value.x, 0.0f, 1.0f), clampf(value.y, 0.0f, 1.0f),
                 clampf(value.z, 0.0f, 1.0f), clampf(value.w, 0.0f, 1.0f)};
    }
    if (dst.writeMask & kMaskX)
        reg->x = value.x;
    if (dst.writeMask & kMaskY)
        reg->y = value.y;
    if (dst.writeMask & kMaskZ)
        reg->z = value.z;
    if (dst.writeMask & kMaskW)
        reg->w = value.w;
}

/** The shared arithmetic core; @p a/@p b/@p c are fully modified
 *  operand values. Returns the result to store (not used for KIL).
 *  Force-inlined so the switch folds away wherever @p op is a
 *  compile-time constant (the templated dispatch below). */
WC3D_FORCE_INLINE Vec4
aluResult(Opcode op, const Vec4 &a, const Vec4 &b, const Vec4 &c)
{
    Vec4 r;
    switch (op) {
      case Opcode::MOV:
        r = a;
        break;
      case Opcode::ADD:
        r = a + b;
        break;
      case Opcode::SUB:
        r = a - b;
        break;
      case Opcode::MUL:
        r = {a.x * b.x, a.y * b.y, a.z * b.z, a.w * b.w};
        break;
      case Opcode::MAD:
        r = {a.x * b.x + c.x, a.y * b.y + c.y, a.z * b.z + c.z,
             a.w * b.w + c.w};
        break;
      case Opcode::DP3: {
        float d = a.x * b.x + a.y * b.y + a.z * b.z;
        r = {d, d, d, d};
        break;
      }
      case Opcode::DP4: {
        float d = a.dot(b);
        r = {d, d, d, d};
        break;
      }
      case Opcode::RCP: {
        float d = a.x != 0.0f ? 1.0f / a.x : 0.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::RSQ: {
        float s = std::fabs(a.x);
        float d = s > 0.0f ? 1.0f / std::sqrt(s) : 0.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::MIN:
        r = {std::fmin(a.x, b.x), std::fmin(a.y, b.y), std::fmin(a.z, b.z),
             std::fmin(a.w, b.w)};
        break;
      case Opcode::MAX:
        r = {std::fmax(a.x, b.x), std::fmax(a.y, b.y), std::fmax(a.z, b.z),
             std::fmax(a.w, b.w)};
        break;
      case Opcode::SLT:
        r = {a.x < b.x ? 1.0f : 0.0f, a.y < b.y ? 1.0f : 0.0f,
             a.z < b.z ? 1.0f : 0.0f, a.w < b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SGE:
        r = {a.x >= b.x ? 1.0f : 0.0f, a.y >= b.y ? 1.0f : 0.0f,
             a.z >= b.z ? 1.0f : 0.0f, a.w >= b.w ? 1.0f : 0.0f};
        break;
      case Opcode::FRC:
        r = {a.x - std::floor(a.x), a.y - std::floor(a.y),
             a.z - std::floor(a.z), a.w - std::floor(a.w)};
        break;
      case Opcode::FLR:
        r = {std::floor(a.x), std::floor(a.y), std::floor(a.z),
             std::floor(a.w)};
        break;
      case Opcode::ABS:
        r = {std::fabs(a.x), std::fabs(a.y), std::fabs(a.z),
             std::fabs(a.w)};
        break;
      case Opcode::EX2: {
        float d = std::exp2(a.x);
        r = {d, d, d, d};
        break;
      }
      case Opcode::LG2: {
        float d = a.x > 0.0f ? std::log2(a.x) : -126.0f;
        r = {d, d, d, d};
        break;
      }
      case Opcode::POW: {
        float d = std::pow(std::fabs(a.x), b.x);
        r = {d, d, d, d};
        break;
      }
      case Opcode::LRP:
        r = {a.x * b.x + (1.0f - a.x) * c.x,
             a.y * b.y + (1.0f - a.y) * c.y,
             a.z * b.z + (1.0f - a.z) * c.z,
             a.w * b.w + (1.0f - a.w) * c.w};
        break;
      case Opcode::CMP:
        r = {a.x < 0.0f ? b.x : c.x, a.y < 0.0f ? b.y : c.y,
             a.z < 0.0f ? b.z : c.z, a.w < 0.0f ? b.w : c.w};
        break;
      case Opcode::NRM: {
        Vec3 n = a.xyz().normalized();
        r = {n.x, n.y, n.z, a.w};
        break;
      }
      case Opcode::XPD: {
        Vec3 x = a.xyz().cross(b.xyz());
        r = {x.x, x.y, x.z, 1.0f};
        break;
      }
      case Opcode::DST: {
        r = {1.0f, a.y * b.y, a.z, b.w};
        break;
      }
      case Opcode::LIT: {
        float diffuse = std::fmax(a.x, 0.0f);
        float specular = 0.0f;
        if (a.x > 0.0f) {
            float e = clampf(a.w, -128.0f, 128.0f);
            specular = std::pow(std::fmax(a.y, 0.0f), e);
        }
        r = {1.0f, diffuse, specular, 1.0f};
        break;
      }
      default:
        panic("shader: ALU executor got texture opcode %s",
              opcodeName(op));
    }
    return r;
}

/** Execute a non-texture instruction on one lane; returns kill flag. */
bool
execAlu(const Instruction &in, LaneState &lane, const Vec4 *constants)
{
    Vec4 a, b, c;
    const OpcodeInfo &info = opcodeInfo(in.op);
    if (info.numSrcs >= 1)
        a = readSrc(lane, constants, in.src[0]);
    if (info.numSrcs >= 2)
        b = readSrc(lane, constants, in.src[1]);
    if (info.numSrcs >= 3)
        c = readSrc(lane, constants, in.src[2]);

    if (in.op == Opcode::KIL)
        return a.x < 0.0f || a.y < 0.0f || a.z < 0.0f || a.w < 0.0f;

    writeDst(lane, in.dst, aluResult(in.op, a, b, c));
    return false;
}

// ---------------------------------------------------------------------------
// Pre-decoded hot path. Register files are resolved at decode time into
// direct table indices; swizzle/negate/abs/saturate/write-mask pay only
// when the flag byte says they apply. Semantics (including float special
// cases) are shared with the legacy path through aluResult().
// ---------------------------------------------------------------------------

/** Per-lane register tables, indexed by the RegFile value baked into
 *  DecodedSrc::file / DecodedOp::dstFile. */
struct RegTables
{
    const Vec4 *read[4];
    Vec4 *write[4];
};

WC3D_FORCE_INLINE RegTables
laneTables(LaneState &lane, const Vec4 *constants)
{
    return {{lane.inputs, lane.temps, constants, lane.outputs},
            {nullptr, lane.temps, nullptr, lane.outputs}};
}

WC3D_FORCE_INLINE Vec4
loadSrc(const RegTables &t, const DecodedSrc &src)
{
    const Vec4 &reg = t.read[src.file][src.index];
    if (src.flags == 0) [[likely]]
        return reg;
    Vec4 v = {reg[src.comps[0]], reg[src.comps[1]], reg[src.comps[2]],
              reg[src.comps[3]]};
    if (src.flags & kSrcAbsolute) {
        v = {std::fabs(v.x), std::fabs(v.y), std::fabs(v.z),
             std::fabs(v.w)};
    }
    if (src.flags & kSrcNegate)
        v = v * -1.0f;
    return v;
}

WC3D_FORCE_INLINE void
storeDst(const RegTables &t, const DecodedOp &op, Vec4 value)
{
    Vec4 &reg = t.write[op.dstFile][op.dstIndex];
    if (op.dstFlags == 0) [[likely]] {
        reg = value;
        return;
    }
    if (op.dstFlags & kDstSaturate) {
        value = {clampf(value.x, 0.0f, 1.0f), clampf(value.y, 0.0f, 1.0f),
                 clampf(value.z, 0.0f, 1.0f), clampf(value.w, 0.0f, 1.0f)};
    }
    if (!(op.dstFlags & kDstPartial)) {
        reg = value;
        return;
    }
    if (op.writeMask & kMaskX)
        reg.x = value.x;
    if (op.writeMask & kMaskY)
        reg.y = value.y;
    if (op.writeMask & kMaskZ)
        reg.z = value.z;
    if (op.writeMask & kMaskW)
        reg.w = value.w;
}

constexpr bool
isTexOp(Opcode op)
{
    return op == Opcode::TEX || op == Opcode::TXP || op == Opcode::TXB;
}

/** Compile-time source-operand arity (mirrors opcodeInfo().numSrcs;
 *  the decoded-vs-legacy differential tests pin the two together). */
constexpr int
arityFor(Opcode op)
{
    switch (op) {
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::DP3:
      case Opcode::DP4:
      case Opcode::MIN:
      case Opcode::MAX:
      case Opcode::SLT:
      case Opcode::SGE:
      case Opcode::POW:
      case Opcode::XPD:
      case Opcode::DST:
        return 2;
      case Opcode::MAD:
      case Opcode::LRP:
      case Opcode::CMP:
        return 3;
      default:
        return 1;
    }
}

/**
 * Execute one decoded ALU op across @p N lanes. The opcode is a
 * template parameter so the aluResult() switch constant-folds into each
 * specialized body: the interpreter pays one dispatch per instruction
 * per quad rather than one per lane, and unused operand loads compile
 * out entirely.
 */
template <Opcode Op, int N>
WC3D_FORCE_INLINE void
execAluLanes(const DecodedOp &op, const RegTables *t)
{
    for (int l = 0; l < N; ++l) {
        Vec4 a, b, c;
        a = loadSrc(t[l], op.src[0]);
        if constexpr (arityFor(Op) >= 2)
            b = loadSrc(t[l], op.src[1]);
        if constexpr (arityFor(Op) >= 3)
            c = loadSrc(t[l], op.src[2]);
        storeDst(t[l], op, aluResult(Op, a, b, c));
    }
}

/** Single dispatch point for decoded ALU ops (KIL/texture excluded). */
template <int N>
inline void
dispatchAlu(const DecodedOp &op, const RegTables *t)
{
    switch (op.op) {
#define WC3D_ALU_CASE(OP)                                                \
      case Opcode::OP:                                                   \
        execAluLanes<Opcode::OP, N>(op, t);                              \
        break;
      WC3D_ALU_CASE(MOV)
      WC3D_ALU_CASE(ADD)
      WC3D_ALU_CASE(SUB)
      WC3D_ALU_CASE(MUL)
      WC3D_ALU_CASE(MAD)
      WC3D_ALU_CASE(DP3)
      WC3D_ALU_CASE(DP4)
      WC3D_ALU_CASE(RCP)
      WC3D_ALU_CASE(RSQ)
      WC3D_ALU_CASE(MIN)
      WC3D_ALU_CASE(MAX)
      WC3D_ALU_CASE(SLT)
      WC3D_ALU_CASE(SGE)
      WC3D_ALU_CASE(FRC)
      WC3D_ALU_CASE(FLR)
      WC3D_ALU_CASE(ABS)
      WC3D_ALU_CASE(EX2)
      WC3D_ALU_CASE(LG2)
      WC3D_ALU_CASE(POW)
      WC3D_ALU_CASE(LRP)
      WC3D_ALU_CASE(CMP)
      WC3D_ALU_CASE(NRM)
      WC3D_ALU_CASE(XPD)
      WC3D_ALU_CASE(DST)
      WC3D_ALU_CASE(LIT)
#undef WC3D_ALU_CASE
      default:
        panic("shader: ALU dispatcher got non-ALU opcode %s",
              opcodeName(op.op));
    }
}

/** Evaluate a decoded KIL condition on one lane. */
WC3D_FORCE_INLINE bool
execKill(const DecodedOp &op, const RegTables &t)
{
    Vec4 k = loadSrc(t, op.src[0]);
    return k.x < 0.0f || k.y < 0.0f || k.z < 0.0f || k.w < 0.0f;
}

} // namespace

void
Interpreter::run(const Program &program, LaneState &lane)
{
    const DecodedProgram &dec = program.decoded();
    WC3D_ASSERT(!dec.hasTexture() &&
                "texture sampling requires quad execution");
    const RegTables t = laneTables(lane, program.constants().data());
    std::uint64_t kills = 0;
    for (const DecodedOp &op : dec.ops()) {
        if (op.op == Opcode::KIL) [[unlikely]] {
            if (execKill(op, t)) {
                lane.killed = true;
                ++kills;
            }
        } else {
            dispatchAlu<1>(op, &t);
        }
    }
    _stats.instructionsExecuted += dec.ops().size();
    _stats.killsTaken += kills;
    ++_stats.programsRun;
}

void
Interpreter::runQuadDecoded(const Program &program, const DecodedProgram &dec,
                            QuadState &quad,
                            TextureSampleHandler *tex_handler)
{
    const Vec4 *constants = program.constants().data();
    const RegTables t[4] = {
        laneTables(quad.lanes[0], constants),
        laneTables(quad.lanes[1], constants),
        laneTables(quad.lanes[2], constants),
        laneTables(quad.lanes[3], constants),
    };
    std::uint64_t covered = 0;
    for (int l = 0; l < 4; ++l)
        covered += quad.covered[l] ? 1 : 0;

    std::uint64_t tex_ops = 0;
    for (const DecodedOp &op : dec.ops()) {
        if (isTexOp(op.op)) [[unlikely]] {
            ++tex_ops;
            WC3D_ASSERT(tex_handler &&
                        "texture instruction without a sampler handler");
            Vec4 coords[4];
            float lod_bias = 0.0f;
            for (int l = 0; l < 4; ++l) {
                Vec4 c = loadSrc(t[l], op.src[0]);
                if (op.op == Opcode::TXP && c.w != 0.0f) {
                    c = {c.x / c.w, c.y / c.w, c.z / c.w, 1.0f};
                } else if (op.op == Opcode::TXB) {
                    // Per-quad bias comes from the first lane's w.
                    if (l == 0)
                        lod_bias = c.w;
                }
                coords[l] = c;
            }
            Vec4 out[4];
            tex_handler->sampleQuad(op.sampler, coords, lod_bias, out);
            for (int l = 0; l < 4; ++l)
                storeDst(t[l], op, out[l]);
        } else if (op.op == Opcode::KIL) [[unlikely]] {
            for (int l = 0; l < 4; ++l) {
                if (execKill(op, t[l])) {
                    if (!quad.lanes[l].killed && quad.covered[l])
                        ++_stats.killsTaken;
                    quad.lanes[l].killed = true;
                }
            }
        } else {
            dispatchAlu<4>(op, t);
        }
    }
    _stats.instructionsExecuted += covered * dec.ops().size();
    _stats.textureInstructions += covered * tex_ops;
    _stats.programsRun += covered;
}

void
Interpreter::runQuad(const Program &program, QuadState &quad,
                     TextureSampleHandler *tex_handler)
{
    runQuadDecoded(program, program.decoded(), quad, tex_handler);
}

void
Interpreter::runQuads(const Program &program, QuadState *quads,
                      std::size_t count, TextureSampleHandler *tex_handler)
{
    if (count == 0)
        return;
    const DecodedProgram &dec = program.decoded();
    for (std::size_t i = 0; i < count; ++i)
        runQuadDecoded(program, dec, quads[i], tex_handler);
}

void
Interpreter::runLegacy(const Program &program, LaneState &lane)
{
    const Vec4 *constants = program.constants().data();
    for (const Instruction &in : program.code()) {
        WC3D_ASSERT(!opcodeInfo(in.op).isTexture &&
                    "texture sampling requires quad execution");
        ++_stats.instructionsExecuted;
        if (execAlu(in, lane, constants)) {
            lane.killed = true;
            ++_stats.killsTaken;
        }
    }
    ++_stats.programsRun;
}

void
Interpreter::runQuadLegacy(const Program &program, QuadState &quad,
                           TextureSampleHandler *tex_handler)
{
    const Vec4 *constants = program.constants().data();
    int covered = 0;
    for (int l = 0; l < 4; ++l)
        covered += quad.covered[l] ? 1 : 0;

    for (const Instruction &in : program.code()) {
        const OpcodeInfo &info = opcodeInfo(in.op);
        _stats.instructionsExecuted +=
            static_cast<std::uint64_t>(covered);
        if (info.isTexture) {
            _stats.textureInstructions +=
                static_cast<std::uint64_t>(covered);
            WC3D_ASSERT(tex_handler &&
                        "texture instruction without a sampler handler");
            Vec4 coords[4];
            float lod_bias = 0.0f;
            for (int l = 0; l < 4; ++l) {
                Vec4 c =
                    readSrc(quad.lanes[l], constants, in.src[0]);
                if (in.op == Opcode::TXP && c.w != 0.0f) {
                    c = {c.x / c.w, c.y / c.w, c.z / c.w, 1.0f};
                } else if (in.op == Opcode::TXB) {
                    // Per-quad bias comes from the first lane's w.
                    if (l == 0)
                        lod_bias = c.w;
                }
                coords[l] = c;
            }
            Vec4 out[4];
            tex_handler->sampleQuad(in.sampler, coords, lod_bias, out);
            for (int l = 0; l < 4; ++l)
                writeDst(quad.lanes[l], in.dst, out[l]);
        } else {
            for (int l = 0; l < 4; ++l) {
                if (execAlu(in, quad.lanes[l], constants)) {
                    if (!quad.lanes[l].killed && quad.covered[l])
                        ++_stats.killsTaken;
                    quad.lanes[l].killed = true;
                }
            }
        }
    }
    _stats.programsRun += static_cast<std::uint64_t>(covered);
}

} // namespace wc3d::shader
