#include "shader/interp.hh"

#include <cmath>

#include "common/log.hh"
#include "shader/alucore.hh"
#include "shader/decoded.hh"
#include "shader/jit/jit.hh"

namespace wc3d::shader {

namespace {

// ---------------------------------------------------------------------------
// Legacy reference interpreter: decodes shader::Instruction operands
// field-by-field on every execution. Kept bit-exact as the differential
// baseline for the pre-decoded hot path below.
// ---------------------------------------------------------------------------

Vec4
applySwizzle(Vec4 v, std::uint8_t swizzle)
{
    return {v[swizzleComp(swizzle, 0)], v[swizzleComp(swizzle, 1)],
            v[swizzleComp(swizzle, 2)], v[swizzleComp(swizzle, 3)]};
}

Vec4
readSrc(const LaneState &lane, const Vec4 *constants, const SrcOperand &src)
{
    Vec4 v;
    switch (src.file) {
      case RegFile::Input:
        v = lane.inputs[src.index];
        break;
      case RegFile::Temp:
        v = lane.temps[src.index];
        break;
      case RegFile::Const:
        v = constants[src.index];
        break;
      case RegFile::Output:
        v = lane.outputs[src.index];
        break;
    }
    v = applySwizzle(v, src.swizzle);
    if (src.absolute) {
        v = {std::fabs(v.x), std::fabs(v.y), std::fabs(v.z),
             std::fabs(v.w)};
    }
    if (src.negate)
        v = v * -1.0f;
    return v;
}

void
writeDst(LaneState &lane, const DstOperand &dst, Vec4 value)
{
    Vec4 *reg = nullptr;
    switch (dst.file) {
      case RegFile::Temp:
        reg = &lane.temps[dst.index];
        break;
      case RegFile::Output:
        reg = &lane.outputs[dst.index];
        break;
      case RegFile::Input:
      case RegFile::Const:
        panic("shader: write to read-only register file");
    }
    if (dst.saturate) {
        value = {clampf(value.x, 0.0f, 1.0f), clampf(value.y, 0.0f, 1.0f),
                 clampf(value.z, 0.0f, 1.0f), clampf(value.w, 0.0f, 1.0f)};
    }
    if (dst.writeMask & kMaskX)
        reg->x = value.x;
    if (dst.writeMask & kMaskY)
        reg->y = value.y;
    if (dst.writeMask & kMaskZ)
        reg->z = value.z;
    if (dst.writeMask & kMaskW)
        reg->w = value.w;
}

/** Execute a non-texture instruction on one lane; returns kill flag.
 *  Arithmetic semantics live in shader/alucore.hh (aluResult), shared
 *  with the decoded path below and the JIT's transcendental helpers. */
bool
execAlu(const Instruction &in, LaneState &lane, const Vec4 *constants)
{
    Vec4 a, b, c;
    const OpcodeInfo &info = opcodeInfo(in.op);
    if (info.numSrcs >= 1)
        a = readSrc(lane, constants, in.src[0]);
    if (info.numSrcs >= 2)
        b = readSrc(lane, constants, in.src[1]);
    if (info.numSrcs >= 3)
        c = readSrc(lane, constants, in.src[2]);

    if (in.op == Opcode::KIL)
        return a.x < 0.0f || a.y < 0.0f || a.z < 0.0f || a.w < 0.0f;

    writeDst(lane, in.dst, aluResult(in.op, a, b, c));
    return false;
}

// ---------------------------------------------------------------------------
// Pre-decoded hot path. Register files are resolved at decode time into
// direct table indices; swizzle/negate/abs/saturate/write-mask pay only
// when the flag byte says they apply. Semantics (including float special
// cases) are shared with the legacy path through aluResult().
// ---------------------------------------------------------------------------

/** Per-lane register tables, indexed by the RegFile value baked into
 *  DecodedSrc::file / DecodedOp::dstFile. */
struct RegTables
{
    const Vec4 *read[4];
    Vec4 *write[4];
};

WC3D_FORCE_INLINE RegTables
laneTables(LaneState &lane, const Vec4 *constants)
{
    return {{lane.inputs, lane.temps, constants, lane.outputs},
            {nullptr, lane.temps, nullptr, lane.outputs}};
}

WC3D_FORCE_INLINE Vec4
loadSrc(const RegTables &t, const DecodedSrc &src)
{
    const Vec4 &reg = t.read[src.file][src.index];
    if (src.flags == 0) [[likely]]
        return reg;
    Vec4 v = {reg[src.comps[0]], reg[src.comps[1]], reg[src.comps[2]],
              reg[src.comps[3]]};
    if (src.flags & kSrcAbsolute) {
        v = {std::fabs(v.x), std::fabs(v.y), std::fabs(v.z),
             std::fabs(v.w)};
    }
    if (src.flags & kSrcNegate)
        v = v * -1.0f;
    return v;
}

WC3D_FORCE_INLINE void
storeDst(const RegTables &t, const DecodedOp &op, Vec4 value)
{
    Vec4 &reg = t.write[op.dstFile][op.dstIndex];
    if (op.dstFlags == 0) [[likely]] {
        reg = value;
        return;
    }
    if (op.dstFlags & kDstSaturate) {
        value = {clampf(value.x, 0.0f, 1.0f), clampf(value.y, 0.0f, 1.0f),
                 clampf(value.z, 0.0f, 1.0f), clampf(value.w, 0.0f, 1.0f)};
    }
    if (!(op.dstFlags & kDstPartial)) {
        reg = value;
        return;
    }
    if (op.writeMask & kMaskX)
        reg.x = value.x;
    if (op.writeMask & kMaskY)
        reg.y = value.y;
    if (op.writeMask & kMaskZ)
        reg.z = value.z;
    if (op.writeMask & kMaskW)
        reg.w = value.w;
}

constexpr bool
isTexOp(Opcode op)
{
    return op == Opcode::TEX || op == Opcode::TXP || op == Opcode::TXB;
}

/**
 * Execute one decoded ALU op across @p N lanes. The opcode is a
 * template parameter so the aluResult() switch constant-folds into each
 * specialized body: the interpreter pays one dispatch per instruction
 * per quad rather than one per lane, and unused operand loads compile
 * out entirely.
 */
template <Opcode Op, int N>
WC3D_FORCE_INLINE void
execAluLanes(const DecodedOp &op, const RegTables *t)
{
    for (int l = 0; l < N; ++l) {
        Vec4 a, b, c;
        a = loadSrc(t[l], op.src[0]);
        if constexpr (arityFor(Op) >= 2)
            b = loadSrc(t[l], op.src[1]);
        if constexpr (arityFor(Op) >= 3)
            c = loadSrc(t[l], op.src[2]);
        storeDst(t[l], op, aluResult(Op, a, b, c));
    }
}

/** Single dispatch point for decoded ALU ops (KIL/texture excluded). */
template <int N>
inline void
dispatchAlu(const DecodedOp &op, const RegTables *t)
{
    switch (op.op) {
#define WC3D_ALU_CASE(OP)                                                \
      case Opcode::OP:                                                   \
        execAluLanes<Opcode::OP, N>(op, t);                              \
        break;
      WC3D_ALU_CASE(MOV)
      WC3D_ALU_CASE(ADD)
      WC3D_ALU_CASE(SUB)
      WC3D_ALU_CASE(MUL)
      WC3D_ALU_CASE(MAD)
      WC3D_ALU_CASE(DP3)
      WC3D_ALU_CASE(DP4)
      WC3D_ALU_CASE(RCP)
      WC3D_ALU_CASE(RSQ)
      WC3D_ALU_CASE(MIN)
      WC3D_ALU_CASE(MAX)
      WC3D_ALU_CASE(SLT)
      WC3D_ALU_CASE(SGE)
      WC3D_ALU_CASE(FRC)
      WC3D_ALU_CASE(FLR)
      WC3D_ALU_CASE(ABS)
      WC3D_ALU_CASE(EX2)
      WC3D_ALU_CASE(LG2)
      WC3D_ALU_CASE(POW)
      WC3D_ALU_CASE(LRP)
      WC3D_ALU_CASE(CMP)
      WC3D_ALU_CASE(NRM)
      WC3D_ALU_CASE(XPD)
      WC3D_ALU_CASE(DST)
      WC3D_ALU_CASE(LIT)
#undef WC3D_ALU_CASE
      default:
        panic("shader: ALU dispatcher got non-ALU opcode %s",
              opcodeName(op.op));
    }
}

/** Evaluate a decoded KIL condition on one lane. */
WC3D_FORCE_INLINE bool
execKill(const DecodedOp &op, const RegTables &t)
{
    Vec4 k = loadSrc(t, op.src[0]);
    return k.x < 0.0f || k.y < 0.0f || k.z < 0.0f || k.w < 0.0f;
}

} // namespace

void
Interpreter::run(const Program &program, LaneState &lane)
{
    if (const jit::JitProgram *jp = program.jitted();
        jp && jp->laneKernel()) [[likely]] {
        jit::CallCtx ctx;
        ctx.lane = &lane;
        jp->laneKernel()(&lane, program.constants().data(), &ctx);
        _stats.instructionsExecuted += jp->opCount();
        _stats.killsTaken += ctx.kills;
        ++_stats.programsRun;
        return;
    }
    const DecodedProgram &dec = program.decoded();
    WC3D_ASSERT(!dec.hasTexture() &&
                "texture sampling requires quad execution");
    const RegTables t = laneTables(lane, program.constants().data());
    std::uint64_t kills = 0;
    for (const DecodedOp &op : dec.ops()) {
        if (op.op == Opcode::KIL) [[unlikely]] {
            if (execKill(op, t)) {
                lane.killed = true;
                ++kills;
            }
        } else {
            dispatchAlu<1>(op, &t);
        }
    }
    _stats.instructionsExecuted += dec.ops().size();
    _stats.killsTaken += kills;
    ++_stats.programsRun;
}

void
Interpreter::runQuadDecoded(const Program &program, const DecodedProgram &dec,
                            QuadState &quad,
                            TextureSampleHandler *tex_handler)
{
    const Vec4 *constants = program.constants().data();
    const RegTables t[4] = {
        laneTables(quad.lanes[0], constants),
        laneTables(quad.lanes[1], constants),
        laneTables(quad.lanes[2], constants),
        laneTables(quad.lanes[3], constants),
    };
    std::uint64_t covered = 0;
    for (int l = 0; l < 4; ++l)
        covered += quad.covered[l] ? 1 : 0;

    std::uint64_t tex_ops = 0;
    for (const DecodedOp &op : dec.ops()) {
        if (isTexOp(op.op)) [[unlikely]] {
            ++tex_ops;
            WC3D_ASSERT(tex_handler &&
                        "texture instruction without a sampler handler");
            Vec4 coords[4];
            float lod_bias = 0.0f;
            for (int l = 0; l < 4; ++l) {
                Vec4 c = loadSrc(t[l], op.src[0]);
                if (op.op == Opcode::TXP && c.w != 0.0f) {
                    c = {c.x / c.w, c.y / c.w, c.z / c.w, 1.0f};
                } else if (op.op == Opcode::TXB) {
                    // Per-quad bias comes from the first lane's w.
                    if (l == 0)
                        lod_bias = c.w;
                }
                coords[l] = c;
            }
            Vec4 out[4];
            tex_handler->sampleQuad(op.sampler, coords, lod_bias, out);
            for (int l = 0; l < 4; ++l)
                storeDst(t[l], op, out[l]);
        } else if (op.op == Opcode::KIL) [[unlikely]] {
            for (int l = 0; l < 4; ++l) {
                if (execKill(op, t[l])) {
                    if (!quad.lanes[l].killed && quad.covered[l])
                        ++_stats.killsTaken;
                    quad.lanes[l].killed = true;
                }
            }
        } else {
            dispatchAlu<4>(op, t);
        }
    }
    _stats.instructionsExecuted += covered * dec.ops().size();
    _stats.textureInstructions += covered * tex_ops;
    _stats.programsRun += covered;
}

void
Interpreter::runQuad(const Program &program, QuadState &quad,
                     TextureSampleHandler *tex_handler)
{
    if (const jit::JitProgram *jp = program.jitted()) [[likely]] {
        runQuadsJit(program, *jp, &quad, 1, tex_handler);
        return;
    }
    runQuadDecoded(program, program.decoded(), quad, tex_handler);
}

void
Interpreter::runQuads(const Program &program, QuadState *quads,
                      std::size_t count, TextureSampleHandler *tex_handler)
{
    if (count == 0)
        return;
    if (const jit::JitProgram *jp = program.jitted()) [[likely]] {
        runQuadsJit(program, *jp, quads, count, tex_handler);
        return;
    }
    const DecodedProgram &dec = program.decoded();
    for (std::size_t i = 0; i < count; ++i)
        runQuadDecoded(program, dec, quads[i], tex_handler);
}

void
Interpreter::runQuadsJit(const Program &program, const jit::JitProgram &jp,
                         QuadState *quads, std::size_t count,
                         TextureSampleHandler *tex_handler)
{
    WC3D_ASSERT((jp.texOpCount() == 0 || tex_handler) &&
                "texture instruction without a sampler handler");
    const Vec4 *constants = program.constants().data();
    jit::JitProgram::QuadFn fn = jp.quadKernel();
    jit::CallCtx ctx;
    ctx.handler = tex_handler;
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < count; ++i) {
        QuadState &quad = quads[i];
        ctx.quad = &quad;
        fn(&quad, constants, &ctx);
        for (int l = 0; l < 4; ++l)
            covered += quad.covered[l] ? 1 : 0;
    }
    // Identical accounting to runQuadDecoded: every op (ALU, texture,
    // KIL) counts once per covered lane; KIL takes were tallied by the
    // kernel's kill helper with the decoded path's exact covered /
    // not-yet-killed predicate.
    _stats.instructionsExecuted += covered * jp.opCount();
    _stats.textureInstructions += covered * jp.texOpCount();
    _stats.killsTaken += ctx.kills;
    _stats.programsRun += covered;
}

void
Interpreter::runLegacy(const Program &program, LaneState &lane)
{
    const Vec4 *constants = program.constants().data();
    for (const Instruction &in : program.code()) {
        WC3D_ASSERT(!opcodeInfo(in.op).isTexture &&
                    "texture sampling requires quad execution");
        ++_stats.instructionsExecuted;
        if (execAlu(in, lane, constants)) {
            lane.killed = true;
            ++_stats.killsTaken;
        }
    }
    ++_stats.programsRun;
}

void
Interpreter::runQuadLegacy(const Program &program, QuadState &quad,
                           TextureSampleHandler *tex_handler)
{
    const Vec4 *constants = program.constants().data();
    int covered = 0;
    for (int l = 0; l < 4; ++l)
        covered += quad.covered[l] ? 1 : 0;

    for (const Instruction &in : program.code()) {
        const OpcodeInfo &info = opcodeInfo(in.op);
        _stats.instructionsExecuted +=
            static_cast<std::uint64_t>(covered);
        if (info.isTexture) {
            _stats.textureInstructions +=
                static_cast<std::uint64_t>(covered);
            WC3D_ASSERT(tex_handler &&
                        "texture instruction without a sampler handler");
            Vec4 coords[4];
            float lod_bias = 0.0f;
            for (int l = 0; l < 4; ++l) {
                Vec4 c =
                    readSrc(quad.lanes[l], constants, in.src[0]);
                if (in.op == Opcode::TXP && c.w != 0.0f) {
                    c = {c.x / c.w, c.y / c.w, c.z / c.w, 1.0f};
                } else if (in.op == Opcode::TXB) {
                    // Per-quad bias comes from the first lane's w.
                    if (l == 0)
                        lod_bias = c.w;
                }
                coords[l] = c;
            }
            Vec4 out[4];
            tex_handler->sampleQuad(in.sampler, coords, lod_bias, out);
            for (int l = 0; l < 4; ++l)
                writeDst(quad.lanes[l], in.dst, out[l]);
        } else {
            for (int l = 0; l < 4; ++l) {
                if (execAlu(in, quad.lanes[l], constants)) {
                    if (!quad.lanes[l].killed && quad.covered[l])
                        ++_stats.killsTaken;
                    quad.lanes[l].killed = true;
                }
            }
        }
    }
    _stats.programsRun += static_cast<std::uint64_t>(covered);
}

} // namespace wc3d::shader
