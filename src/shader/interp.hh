/**
 * @file
 * Shader interpreter. Vertices execute one lane at a time; fragments
 * execute as 2x2 quads in lockstep, which is what lets the texture unit
 * compute level-of-detail from coordinate differences between quad lanes
 * (the mechanism behind the paper's bilinear/aniso accounting) and what
 * makes quads "the working unit of the subsequent GPU pipeline stages".
 */

#ifndef WC3D_SHADER_INTERP_HH
#define WC3D_SHADER_INTERP_HH

#include <cstddef>
#include <cstdint>

#include "common/vecmath.hh"
#include "shader/program.hh"

namespace wc3d::shader {

class DecodedProgram;

namespace jit {
class JitProgram;
}

/**
 * Receiver of texture sampling requests issued by TEX/TXP/TXB.
 * Implemented by the texture unit; tests use stub handlers.
 */
class TextureSampleHandler
{
  public:
    virtual ~TextureSampleHandler() = default;

    /**
     * Sample texture @p sampler for a whole quad.
     *
     * @param sampler  texture unit index
     * @param coords   four per-lane texture coordinates (projection for
     *                 TXP already applied)
     * @param lod_bias per-quad LOD bias (TXB), 0 otherwise
     * @param out      four per-lane sampled colours to fill in
     */
    virtual void sampleQuad(int sampler, const Vec4 coords[4],
                            float lod_bias, Vec4 out[4]) = 0;
};

/** Register state for one shader lane. */
struct LaneState
{
    Vec4 inputs[kMaxInputs];
    Vec4 temps[kMaxTemps];
    Vec4 outputs[kMaxOutputs];
    bool killed = false;
};

/** Register state for a 2x2 fragment quad (lane order: x-major). */
struct QuadState
{
    LaneState lanes[4];
    /** Rasterizer coverage per lane; uncovered (helper) lanes still
     *  execute but their results are discarded downstream. */
    bool covered[4] = {false, false, false, false};
};

/** Dynamic execution statistics accumulated by an Interpreter. */
struct InterpStats
{
    std::uint64_t programsRun = 0;       ///< lane-invocations completed
    std::uint64_t instructionsExecuted = 0;
    std::uint64_t textureInstructions = 0;
    std::uint64_t killsTaken = 0;        ///< lanes killed by KIL

    std::uint64_t
    aluInstructions() const
    {
        return instructionsExecuted - textureInstructions;
    }
};

/**
 * Executes shader programs. Stateless between runs apart from the
 * accumulated statistics.
 *
 * run()/runQuad()/runQuads() execute the program's native x86-64 JIT
 * kernel when one is available (shader/jit/jit.hh; enabled by default
 * on x86-64 hosts, WC3D_JIT=0 to disable) and otherwise the program's
 * pre-decoded form (shader/decoded.hh), triggering the compile/decode
 * lazily on first use. Both produce bit-identical register state and
 * statistics; the decoded path is the JIT's differential oracle. The
 * runLegacy()/runQuadLegacy() entry points execute the original
 * field-by-field interpreter over shader::Instruction; they are kept as
 * the bit-exact reference for differential tests and as the baseline
 * for the hot-path speedup benchmarks.
 */
class Interpreter
{
  public:
    /**
     * Run @p program on a single lane (vertex shading).
     * Texture instructions are not allowed in single-lane mode.
     */
    void run(const Program &program, LaneState &lane);

    /**
     * Run @p program on a quad in lockstep. TEX/TXP/TXB issue one
     * sampleQuad() per instruction to @p tex_handler (which may be null
     * only if the program has no texture instructions).
     *
     * Instruction statistics are charged for covered lanes only: helper
     * lanes execute for derivative correctness but the paper's
     * instruction counts are per shaded fragment.
     */
    void runQuad(const Program &program, QuadState &quad,
                 TextureSampleHandler *tex_handler);

    /**
     * Run @p program on @p count quads back to back, amortizing the
     * decode lookup and per-entry setup over the whole batch. Exactly
     * equivalent to calling runQuad() on each quad in index order
     * (including the order of sampleQuad() calls and all statistics).
     */
    void runQuads(const Program &program, QuadState *quads,
                  std::size_t count, TextureSampleHandler *tex_handler);

    /** Reference single-lane interpreter (pre-decode-free). */
    void runLegacy(const Program &program, LaneState &lane);

    /** Reference quad interpreter (pre-decode-free). */
    void runQuadLegacy(const Program &program, QuadState &quad,
                       TextureSampleHandler *tex_handler);

    const InterpStats &stats() const { return _stats; }
    void resetStats() { _stats = InterpStats(); }

  private:
    void runQuadDecoded(const Program &program, const DecodedProgram &dec,
                        QuadState &quad, TextureSampleHandler *tex_handler);
    void runQuadsJit(const Program &program, const jit::JitProgram &jp,
                     QuadState *quads, std::size_t count,
                     TextureSampleHandler *tex_handler);

    InterpStats _stats;
};

} // namespace wc3d::shader

#endif // WC3D_SHADER_INTERP_HH
