/**
 * @file
 * Pre-decoded shader programs: the hot-path execution form of a
 * shader::Program. A Program stores instructions the way the assembler
 * and the statistics code want them (enum register files, packed
 * swizzles, modifier booleans); executing that form directly pays for
 * operand decoding on every instruction of every lane of every quad.
 * DecodedProgram lowers the instruction vector once per program change
 * into a dense array of DecodedOps with
 *
 *   - register file + index resolved to a direct table lookup,
 *   - the packed swizzle expanded to four component selectors plus an
 *     "identity" fast-path flag,
 *   - negate/absolute/saturate/write-mask folded into per-operand flag
 *     bytes so the common unmodified operand costs one branch,
 *   - texture ops split out (the interpreter's quad loop tests one
 *     flag instead of consulting OpcodeInfo), and
 *   - a register "clear plan" (which temps/outputs a fresh lane must
 *     zero) so execution state can be reused across quads instead of
 *     zero-initializing ~2.5 KB of registers per quad.
 *
 * The decoded form is cached on the Program (invalidated by emit) and
 * is immutable after construction, so one instance is shared by every
 * thread shading with that program. Results are bit-identical to the
 * legacy field-by-field interpreter (tests/test_shader_interp.cc and
 * tests/test_shader_fuzz.cc execute both and compare).
 */

#ifndef WC3D_SHADER_DECODED_HH
#define WC3D_SHADER_DECODED_HH

#include <cstdint>
#include <vector>

#include "shader/program.hh"

namespace wc3d::shader {

struct LaneState;

/** DecodedSrc::flags bits. */
enum : std::uint8_t
{
    kSrcSwizzled = 1, ///< swizzle is not .xyzw
    kSrcAbsolute = 2,
    kSrcNegate = 4,
};

/** DecodedOp::dstFlags bits. */
enum : std::uint8_t
{
    kDstSaturate = 1,
    kDstPartial = 2, ///< write mask is not .xyzw
};

/** One fully resolved source operand. */
struct DecodedSrc
{
    std::uint8_t file = 0;  ///< RegFile cast to a read-table index
    std::uint8_t index = 0;
    std::uint8_t flags = 0; ///< kSrc* bits; 0 = plain register read
    std::uint8_t comps[4] = {0, 1, 2, 3}; ///< expanded swizzle selectors
};

/** One lowered instruction. */
struct DecodedOp
{
    Opcode op = Opcode::MOV;
    std::uint8_t dstFile = 0;  ///< write-table index (Temp or Output)
    std::uint8_t dstIndex = 0;
    std::uint8_t dstFlags = 0; ///< kDst* bits
    std::uint8_t writeMask = kMaskXYZW;
    std::uint8_t sampler = 0;
    DecodedSrc src[3];
};

/**
 * The immutable execution form of one Program. Constants are *not*
 * captured: they may change after decoding (setConstant) and are read
 * live from the Program at execution time, exactly like the legacy
 * interpreter.
 */
class DecodedProgram
{
  public:
    explicit DecodedProgram(const Program &program);

    const std::vector<DecodedOp> &ops() const { return _ops; }

    /** True when any op is TEX/TXP/TXB. */
    bool hasTexture() const { return _hasTexture; }

    /** Bitmask of Input registers the program reads. */
    std::uint32_t inputReadMask() const { return _inputReadMask; }

    /** Temps that are (possibly partially) read before being written. */
    std::uint32_t tempClearMask() const { return _tempClearMask; }

    /** Outputs not fully written by the program (externally read). */
    std::uint32_t outputClearMask() const { return _outputClearMask; }

    /**
     * Reset @p lane so that executing this program on it produces the
     * same results as on a freshly zero-initialized LaneState, without
     * paying for a full clear. Only the temps/outputs in the clear
     * plan are zeroed; inputs are the caller's contract: every slot in
     * inputReadMask() must either be written by the caller before
     * execution or never have been written since the state was
     * constructed (see DESIGN.md "Hot paths & shader pre-decode").
     */
    void prepareLane(LaneState &lane) const;

  private:
    std::vector<DecodedOp> _ops;
    std::uint32_t _inputReadMask = 0;
    std::uint32_t _tempClearMask = 0;
    std::uint32_t _outputClearMask = 0;
    bool _hasTexture = false;
};

} // namespace wc3d::shader

#endif // WC3D_SHADER_DECODED_HH
