#include "shader/program.hh"

#include "common/log.hh"
#include "common/strutil.hh"

namespace wc3d::shader {

SrcOperand
srcInput(int index, std::uint8_t swizzle)
{
    WC3D_ASSERT(index >= 0 && index < kMaxInputs);
    return {RegFile::Input, static_cast<std::uint8_t>(index), swizzle,
            false, false};
}

SrcOperand
srcTemp(int index, std::uint8_t swizzle)
{
    WC3D_ASSERT(index >= 0 && index < kMaxTemps);
    return {RegFile::Temp, static_cast<std::uint8_t>(index), swizzle,
            false, false};
}

SrcOperand
srcConst(int index, std::uint8_t swizzle)
{
    WC3D_ASSERT(index >= 0 && index < kMaxConsts);
    return {RegFile::Const, static_cast<std::uint8_t>(index), swizzle,
            false, false};
}

SrcOperand
negate(SrcOperand s)
{
    s.negate = !s.negate;
    return s;
}

DstOperand
dstTemp(int index, std::uint8_t mask)
{
    WC3D_ASSERT(index >= 0 && index < kMaxTemps);
    return {RegFile::Temp, static_cast<std::uint8_t>(index), mask, false};
}

DstOperand
dstOutput(int index, std::uint8_t mask)
{
    WC3D_ASSERT(index >= 0 && index < kMaxOutputs);
    return {RegFile::Output, static_cast<std::uint8_t>(index), mask, false};
}

DstOperand
saturate(DstOperand d)
{
    d.saturate = true;
    return d;
}

Program::Program(ProgramKind kind, std::string name)
    : _kind(kind), _name(std::move(name))
{
}

Program &
Program::emit(const Instruction &instr)
{
    _code.push_back(instr);
    if (opcodeInfo(instr.op).isTexture)
        ++_texCount;
    _decoded.reset(); // decoded form is stale; rebuilt on next use
    _jit.reset();     // compiled form likewise (also un-caches failure)
    _jitState = 0;
    return *this;
}

namespace {
Instruction
make1(Opcode op, DstOperand d, SrcOperand a)
{
    Instruction i;
    i.op = op;
    i.dst = d;
    i.src[0] = a;
    return i;
}

Instruction
make2(Opcode op, DstOperand d, SrcOperand a, SrcOperand b)
{
    Instruction i = make1(op, d, a);
    i.src[1] = b;
    return i;
}

Instruction
make3(Opcode op, DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c)
{
    Instruction i = make2(op, d, a, b);
    i.src[2] = c;
    return i;
}
} // namespace

Program &Program::mov(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::MOV, d, a)); }
Program &Program::add(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::ADD, d, a, b)); }
Program &Program::sub(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::SUB, d, a, b)); }
Program &Program::mul(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::MUL, d, a, b)); }
Program &Program::mad(DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c)
{ return emit(make3(Opcode::MAD, d, a, b, c)); }
Program &Program::dp3(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::DP3, d, a, b)); }
Program &Program::dp4(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::DP4, d, a, b)); }
Program &Program::rcp(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::RCP, d, a)); }
Program &Program::rsq(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::RSQ, d, a)); }
Program &Program::minOp(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::MIN, d, a, b)); }
Program &Program::maxOp(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::MAX, d, a, b)); }
Program &Program::slt(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::SLT, d, a, b)); }
Program &Program::sge(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::SGE, d, a, b)); }
Program &Program::frc(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::FRC, d, a)); }
Program &Program::flr(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::FLR, d, a)); }
Program &Program::absOp(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::ABS, d, a)); }
Program &Program::ex2(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::EX2, d, a)); }
Program &Program::lg2(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::LG2, d, a)); }
Program &Program::pow(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::POW, d, a, b)); }
Program &Program::lrp(DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c)
{ return emit(make3(Opcode::LRP, d, a, b, c)); }
Program &Program::cmp(DstOperand d, SrcOperand a, SrcOperand b, SrcOperand c)
{ return emit(make3(Opcode::CMP, d, a, b, c)); }
Program &Program::nrm(DstOperand d, SrcOperand a)
{ return emit(make1(Opcode::NRM, d, a)); }
Program &Program::xpd(DstOperand d, SrcOperand a, SrcOperand b)
{ return emit(make2(Opcode::XPD, d, a, b)); }

Program &
Program::tex(DstOperand d, SrcOperand coord, int sampler)
{
    WC3D_ASSERT(sampler >= 0 && sampler < kMaxSamplers);
    Instruction i = make1(Opcode::TEX, d, coord);
    i.sampler = static_cast<std::uint8_t>(sampler);
    return emit(i);
}

Program &
Program::txp(DstOperand d, SrcOperand coord, int sampler)
{
    WC3D_ASSERT(sampler >= 0 && sampler < kMaxSamplers);
    Instruction i = make1(Opcode::TXP, d, coord);
    i.sampler = static_cast<std::uint8_t>(sampler);
    return emit(i);
}

Program &
Program::txb(DstOperand d, SrcOperand coord, int sampler)
{
    WC3D_ASSERT(sampler >= 0 && sampler < kMaxSamplers);
    Instruction i = make1(Opcode::TXB, d, coord);
    i.sampler = static_cast<std::uint8_t>(sampler);
    return emit(i);
}

Program &
Program::kil(SrcOperand a)
{
    Instruction i;
    i.op = Opcode::KIL;
    i.src[0] = a;
    return emit(i);
}

double
Program::aluToTexRatio() const
{
    int tex = textureInstructionCount();
    if (tex == 0)
        return static_cast<double>(aluInstructionCount());
    return static_cast<double>(aluInstructionCount()) / tex;
}

bool
Program::usesKill() const
{
    for (const auto &i : _code)
        if (i.op == Opcode::KIL)
            return true;
    return false;
}

bool
Program::writesOutput(int index) const
{
    for (const auto &i : _code) {
        if (opcodeInfo(i.op).hasDst && i.dst.file == RegFile::Output &&
            i.dst.index == index) {
            return true;
        }
    }
    return false;
}

void
Program::setConstant(int index, Vec4 value)
{
    WC3D_ASSERT(index >= 0 && index < kMaxConsts);
    _constants[static_cast<std::size_t>(index)] = value;
}

Vec4
Program::constant(int index) const
{
    WC3D_ASSERT(index >= 0 && index < kMaxConsts);
    return _constants[static_cast<std::size_t>(index)];
}

namespace {

char
compChar(std::uint8_t c)
{
    static const char chars[] = {'x', 'y', 'z', 'w'};
    return chars[c & 0x3];
}

std::string
regName(RegFile file, int index)
{
    switch (file) {
      case RegFile::Input:
        return format("v%d", index);
      case RegFile::Temp:
        return format("r%d", index);
      case RegFile::Const:
        return format("c%d", index);
      case RegFile::Output:
        return format("o%d", index);
    }
    return "?";
}

std::string
srcText(const SrcOperand &s)
{
    std::string out;
    if (s.negate)
        out += "-";
    std::string reg = regName(s.file, s.index);
    if (s.absolute)
        reg = "|" + reg + "|";
    out += reg;
    if (s.swizzle != kSwizzleXYZW) {
        out += ".";
        // Collapse replicated swizzles (.xxxx -> .x).
        bool all_same = true;
        for (int i = 1; i < 4; ++i)
            all_same &= swizzleComp(s.swizzle, i) == swizzleComp(s.swizzle, 0);
        if (all_same) {
            out += compChar(swizzleComp(s.swizzle, 0));
        } else {
            for (int i = 0; i < 4; ++i)
                out += compChar(swizzleComp(s.swizzle, i));
        }
    }
    return out;
}

std::string
dstText(const DstOperand &d)
{
    std::string out = regName(d.file, d.index);
    if (d.writeMask != kMaskXYZW) {
        out += ".";
        if (d.writeMask & kMaskX)
            out += "x";
        if (d.writeMask & kMaskY)
            out += "y";
        if (d.writeMask & kMaskZ)
            out += "z";
        if (d.writeMask & kMaskW)
            out += "w";
    }
    return out;
}

} // namespace

std::string
disassembleInstruction(const Instruction &instr)
{
    const OpcodeInfo &info = opcodeInfo(instr.op);
    std::string out = info.name;
    if (instr.dst.saturate)
        out += "_SAT";
    out += " ";
    bool first = true;
    if (info.hasDst) {
        out += dstText(instr.dst);
        first = false;
    }
    for (int s = 0; s < info.numSrcs; ++s) {
        if (!first)
            out += ", ";
        out += srcText(instr.src[s]);
        first = false;
    }
    if (info.isTexture)
        out += format(", tex[%d]", instr.sampler);
    out += ";";
    return out;
}

std::string
Program::disassemble() const
{
    std::string out = format("!!%s program \"%s\" (%d instructions)\n",
                             _kind == ProgramKind::Vertex ? "VP" : "FP",
                             _name.c_str(), instructionCount());
    for (const auto &i : _code)
        out += disassembleInstruction(i) + "\n";
    return out;
}

} // namespace wc3d::shader
