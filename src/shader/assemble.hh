/**
 * @file
 * Textual shader assembler: parses the assembly dialect produced by
 * Program::disassemble() back into a Program, giving a round-trippable
 * on-disk representation for shaders in traces and tests.
 *
 * Grammar (one statement per line, ';' optional, '#'/'//' comments):
 *
 *     !!VP program "name"          -- optional header selects the kind
 *     CONST c3 = 1.0 0.5 0 2       -- constant bank initialiser
 *     MAD_SAT r0.xyz, v1, c2.xxxx, -r3
 *     TEX r1, v2, tex[0]
 *     KIL -r1.w
 */

#ifndef WC3D_SHADER_ASSEMBLE_HH
#define WC3D_SHADER_ASSEMBLE_HH

#include <optional>
#include <string>

#include "shader/program.hh"

namespace wc3d::shader {

/** Result of an assemble attempt. */
struct AssembleResult
{
    bool ok = false;
    Program program;
    std::string error;  ///< message with line number when !ok
};

/**
 * Assemble @p source into a Program.
 *
 * @param source shader assembly text
 * @param kind   default program kind when no !!VP/!!FP header is present
 * @param name   default program name
 */
AssembleResult assemble(const std::string &source,
                        ProgramKind kind = ProgramKind::Fragment,
                        const std::string &name = "anonymous");

} // namespace wc3d::shader

#endif // WC3D_SHADER_ASSEMBLE_HH
