#include "shader/isa.hh"

#include "common/log.hh"
#include "common/strutil.hh"

namespace wc3d::shader {

namespace {

const OpcodeInfo kOpcodeTable[] = {
    // name  srcs  tex    dst
    {"MOV", 1, false, true},
    {"ADD", 2, false, true},
    {"SUB", 2, false, true},
    {"MUL", 2, false, true},
    {"MAD", 3, false, true},
    {"DP3", 2, false, true},
    {"DP4", 2, false, true},
    {"RCP", 1, false, true},
    {"RSQ", 1, false, true},
    {"MIN", 2, false, true},
    {"MAX", 2, false, true},
    {"SLT", 2, false, true},
    {"SGE", 2, false, true},
    {"FRC", 1, false, true},
    {"FLR", 1, false, true},
    {"ABS", 1, false, true},
    {"EX2", 1, false, true},
    {"LG2", 1, false, true},
    {"POW", 2, false, true},
    {"LRP", 3, false, true},
    {"CMP", 3, false, true},
    {"NRM", 1, false, true},
    {"XPD", 2, false, true},
    {"DST", 2, false, true},
    {"LIT", 1, false, true},
    {"TEX", 1, true, true},
    {"TXP", 1, true, true},
    {"TXB", 1, true, true},
    {"KIL", 1, false, false},
};

static_assert(sizeof(kOpcodeTable) / sizeof(kOpcodeTable[0]) ==
              static_cast<std::size_t>(Opcode::NumOpcodes),
              "opcode table out of sync with enum");

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<std::size_t>(op);
    WC3D_ASSERT(idx < static_cast<std::size_t>(Opcode::NumOpcodes));
    return kOpcodeTable[idx];
}

const char *
opcodeName(Opcode op)
{
    return opcodeInfo(op).name;
}

bool
opcodeFromName(const std::string &name, Opcode &out)
{
    std::string upper = name;
    for (char &c : upper)
        c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        if (upper == kOpcodeTable[i].name) {
            out = static_cast<Opcode>(i);
            return true;
        }
    }
    return false;
}

} // namespace wc3d::shader
