#include "texture/format.hh"

#include "common/log.hh"

namespace wc3d::tex {

const char *
formatName(TexFormat f)
{
    switch (f) {
      case TexFormat::RGBA8:
        return "RGBA8";
      case TexFormat::DXT1:
        return "DXT1";
      case TexFormat::DXT3:
        return "DXT3";
      case TexFormat::DXT5:
        return "DXT5";
    }
    return "?";
}

std::uint32_t
blockBytes(TexFormat f)
{
    switch (f) {
      case TexFormat::RGBA8:
        return kDecodedBlockBytes;
      case TexFormat::DXT1:
        return 8;
      case TexFormat::DXT3:
      case TexFormat::DXT5:
        return 16;
    }
    panic("unknown texture format");
}

bool
isCompressed(TexFormat f)
{
    return f != TexFormat::RGBA8;
}

double
compressionRatio(TexFormat f)
{
    return static_cast<double>(kDecodedBlockBytes) / blockBytes(f);
}

} // namespace wc3d::tex
