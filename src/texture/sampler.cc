#include "texture/sampler.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace wc3d::tex {

namespace {

int
wrapCoord(int c, int size, TexWrap wrap)
{
    if (wrap == TexWrap::Repeat) {
        c %= size;
        if (c < 0)
            c += size;
        return c;
    }
    return std::clamp(c, 0, size - 1);
}

Vec4
toVec4(Rgba8 c)
{
    return {unorm8ToFloat(c.r), unorm8ToFloat(c.g), unorm8ToFloat(c.b),
            unorm8ToFloat(c.a)};
}

} // namespace

void
Sampler::noteBlock(const Texture2D &texture, int level, int x, int y)
{
    int bx = x / kBlockDim;
    int by = y / kBlockDim;
    std::uint64_t key = (static_cast<std::uint64_t>(level) << 48) |
                        (static_cast<std::uint64_t>(by) << 24) |
                        static_cast<std::uint64_t>(bx);
    for (int i = 0; i < _blockCount; ++i) {
        if (_blockSet[i] == key) {
            ++_blockRefs[i];
            return;
        }
    }
    if (_blockCount < kMaxQuadBlocks) {
        _blockSet[_blockCount] = key;
        _blockRefs[_blockCount] = 1;
        ++_blockCount;
    } else if (_listener) {
        // Overflow: forward immediately rather than losing the access.
        _listener->blockAccess(texture, level, bx, by, 1);
    }
}

void
Sampler::flushBlockSet(const Texture2D &texture)
{
    if (_listener) {
        for (int i = 0; i < _blockCount; ++i) {
            std::uint64_t key = _blockSet[i];
            int level = static_cast<int>(key >> 48);
            int by = static_cast<int>((key >> 24) & 0xffffff);
            int bx = static_cast<int>(key & 0xffffff);
            _listener->blockAccess(texture, level, bx, by,
                                   static_cast<int>(_blockRefs[i]));
        }
    }
    _blockCount = 0;
}

Vec4
Sampler::nearestFetch(const Texture2D &texture, TexWrap wrap, int level,
                      Vec2 uv)
{
    int w = texture.levelWidth(level);
    int h = texture.levelHeight(level);
    int x = wrapCoord(static_cast<int>(std::floor(uv.x * w)), w, wrap);
    int y = wrapCoord(static_cast<int>(std::floor(uv.y * h)), h, wrap);
    ++_stats.texelReads;
    noteBlock(texture, level, x, y);
    return toVec4(texture.texel(level, x, y));
}

Vec4
Sampler::bilinearFetch(const Texture2D &texture, TexWrap wrap, int level,
                       Vec2 uv)
{
    int w = texture.levelWidth(level);
    int h = texture.levelHeight(level);
    float fx = uv.x * w - 0.5f;
    float fy = uv.y * h - 0.5f;
    int x0 = static_cast<int>(std::floor(fx));
    int y0 = static_cast<int>(std::floor(fy));
    float tx = fx - x0;
    float ty = fy - y0;
    int xa = wrapCoord(x0, w, wrap);
    int xb = wrapCoord(x0 + 1, w, wrap);
    int ya = wrapCoord(y0, h, wrap);
    int yb = wrapCoord(y0 + 1, h, wrap);

    ++_stats.bilinearSamples;
    _stats.texelReads += 4;
    noteBlock(texture, level, xa, ya);
    noteBlock(texture, level, xb, ya);
    noteBlock(texture, level, xa, yb);
    noteBlock(texture, level, xb, yb);

    Vec4 c00 = toVec4(texture.texel(level, xa, ya));
    Vec4 c10 = toVec4(texture.texel(level, xb, ya));
    Vec4 c01 = toVec4(texture.texel(level, xa, yb));
    Vec4 c11 = toVec4(texture.texel(level, xb, yb));
    return lerp(lerp(c00, c10, tx), lerp(c01, c11, tx), ty);
}

Vec4
Sampler::filteredFetch(const Texture2D &texture, const SamplerState &state,
                       Vec2 uv, float lod)
{
    int max_level = texture.levels() - 1;
    switch (state.filter) {
      case TexFilter::Nearest: {
        int level = std::clamp(static_cast<int>(std::lround(lod)), 0,
                               max_level);
        return nearestFetch(texture, state.wrap, level, uv);
      }
      case TexFilter::Bilinear: {
        int level = std::clamp(static_cast<int>(std::lround(lod)), 0,
                               max_level);
        return bilinearFetch(texture, state.wrap, level, uv);
      }
      case TexFilter::Trilinear:
      case TexFilter::Anisotropic: {
        if (lod <= 0.0f)
            return bilinearFetch(texture, state.wrap, 0, uv);
        if (lod >= static_cast<float>(max_level))
            return bilinearFetch(texture, state.wrap, max_level, uv);
        int l0 = static_cast<int>(std::floor(lod));
        float frac = lod - static_cast<float>(l0);
        Vec4 a = bilinearFetch(texture, state.wrap, l0, uv);
        if (frac < 1e-4f)
            return a;
        Vec4 b = bilinearFetch(texture, state.wrap, l0 + 1, uv);
        return lerp(a, b, frac);
      }
    }
    panic("unreachable filter mode");
}

Vec4
Sampler::sampleLod(const Texture2D &texture, const SamplerState &state,
                   Vec2 uv, float lod)
{
    ++_stats.requests;
    Vec4 r = filteredFetch(texture, state, uv, lod);
    flushBlockSet(texture);
    return r;
}

void
Sampler::sampleQuad(const Texture2D &texture, const SamplerState &state,
                    const Vec4 coords[4], float lod_bias, Vec4 out[4])
{
    // Texture-space derivatives from quad lane differences, in texels of
    // the base level.
    float w = static_cast<float>(texture.width());
    float h = static_cast<float>(texture.height());
    Vec2 ddx{(coords[1].x - coords[0].x) * w,
             (coords[1].y - coords[0].y) * h};
    Vec2 ddy{(coords[2].x - coords[0].x) * w,
             (coords[2].y - coords[0].y) * h};
    float lx = ddx.length();
    float ly = ddy.length();

    float bias = state.lodBias + lod_bias;

    int probes = 1;
    Vec2 probe_step{0.0f, 0.0f};
    float lod;
    if (state.filter == TexFilter::Anisotropic && state.maxAniso > 1) {
        float major = std::max(lx, ly);
        float minor = std::min(lx, ly);
        if (minor < 1e-6f)
            minor = std::min(major, 1e-6f) > 0.0f ? 1e-6f : major;
        float ratio = 1.0f;
        if (minor > 0.0f)
            ratio = std::min(major / minor,
                             static_cast<float>(state.maxAniso));
        probes = std::max(1, static_cast<int>(std::ceil(ratio - 1e-4f)));
        _stats.anisoRatioSum += probes;
        ++_stats.anisoRequests;
        // Probe footprint: the major axis is split across the probes.
        float effective = probes > 1 ? major / static_cast<float>(probes)
                                     : major;
        float footprint = std::max(minor, effective);
        lod = footprint > 0.0f ? std::log2(footprint) : 0.0f;
        if (probes > 1) {
            // Step along the major axis in uv units.
            Vec2 major_uv = lx >= ly
                ? Vec2{coords[1].x - coords[0].x,
                       coords[1].y - coords[0].y}
                : Vec2{coords[2].x - coords[0].x,
                       coords[2].y - coords[0].y};
            probe_step = major_uv;
        }
    } else {
        float footprint = std::max(lx, ly);
        lod = footprint > 0.0f ? std::log2(footprint) : 0.0f;
    }
    lod += bias;

    for (int lane = 0; lane < 4; ++lane) {
        ++_stats.requests;
        Vec2 uv{coords[lane].x, coords[lane].y};
        if (probes == 1) {
            out[lane] = filteredFetch(texture, state, uv, lod);
        } else {
            Vec4 acc{0, 0, 0, 0};
            for (int p = 0; p < probes; ++p) {
                float t = (static_cast<float>(p) + 0.5f) /
                          static_cast<float>(probes) - 0.5f;
                Vec2 puv{uv.x + probe_step.x * t, uv.y + probe_step.y * t};
                acc = acc + filteredFetch(texture, state, puv, lod);
            }
            out[lane] = acc / static_cast<float>(probes);
        }
    }
    flushBlockSet(texture);
}

} // namespace wc3d::tex
