/**
 * @file
 * DXT1/DXT3/DXT5 (S3TC/BC1-3) block codec. Real encode and decode so
 * the simulator's texture contents, memory footprints and bandwidth all
 * reflect genuinely compressed textures.
 */

#ifndef WC3D_TEXTURE_DXT_HH
#define WC3D_TEXTURE_DXT_HH

#include <cstdint>

#include "common/image.hh"
#include "texture/format.hh"

namespace wc3d::tex {

/**
 * Encode a 4x4 RGBA8 block.
 *
 * @param texels 16 texels, row-major
 * @param format DXT1, DXT3 or DXT5
 * @param out    destination, blockBytes(format) bytes
 */
void encodeBlock(const Rgba8 texels[16], TexFormat format,
                 std::uint8_t *out);

/**
 * Decode a DXT block back to 16 RGBA8 texels.
 *
 * @param data   blockBytes(format) bytes of encoded data
 * @param format DXT1, DXT3 or DXT5
 * @param texels destination, 16 texels row-major
 */
void decodeBlock(const std::uint8_t *data, TexFormat format,
                 Rgba8 texels[16]);

/** Pack an Rgba8 colour to RGB565. */
std::uint16_t packRgb565(Rgba8 c);

/** Unpack RGB565 to Rgba8 (alpha = 255). */
Rgba8 unpackRgb565(std::uint16_t v);

} // namespace wc3d::tex

#endif // WC3D_TEXTURE_DXT_HH
