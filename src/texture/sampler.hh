/**
 * @file
 * Texture sampling and filtering. Implements nearest, bilinear,
 * trilinear and anisotropic (up to 16x, elliptical-footprint style per
 * Feline [28]) filters with per-request bilinear-sample accounting —
 * the dynamic texture cost the paper characterizes in Table XIII:
 * "better than bilinear filter algorithms take additional throughput
 * cycles to complete (1 more for trilinear, up to 32 more with a 16
 * sample anisotropy filtering algorithm)".
 */

#ifndef WC3D_TEXTURE_SAMPLER_HH
#define WC3D_TEXTURE_SAMPLER_HH

#include <cstdint>

#include "common/vecmath.hh"
#include "texture/texture.hh"

namespace wc3d::tex {

/** Texture minification/magnification filter. */
enum class TexFilter : std::uint8_t
{
    Nearest,
    Bilinear,
    Trilinear,
    Anisotropic, ///< trilinear probes along the major footprint axis
};

/** Texture coordinate wrap mode. */
enum class TexWrap : std::uint8_t
{
    Repeat,
    Clamp,
};

/** Sampler configuration bound alongside a texture. */
struct SamplerState
{
    TexFilter filter = TexFilter::Bilinear;
    TexWrap wrap = TexWrap::Repeat;
    int maxAniso = 1;     ///< anisotropy cap (paper workloads use 16)
    float lodBias = 0.0f;
};

/** Cumulative sampling statistics. */
struct SampleStats
{
    std::uint64_t requests = 0;        ///< per-lane texture requests
    std::uint64_t bilinearSamples = 0; ///< bilinear footprints fetched
    std::uint64_t texelReads = 0;      ///< individual texels read
    double anisoRatioSum = 0.0;        ///< sum of per-request aniso N
    std::uint64_t anisoRequests = 0;

    /** Average bilinear samples per texture request (Table XIII). */
    double
    bilinearsPerRequest() const
    {
        return requests ? static_cast<double>(bilinearSamples) / requests
                        : 0.0;
    }
};

/** Receives the distinct 4x4 texel blocks touched by sampling
 *  (implemented by the texture cache). */
class TexelAccessListener
{
  public:
    virtual ~TexelAccessListener() = default;

    /**
     * Block (bx, by) of @p level of @p texture was referenced by
     * @p refs texel taps within one quad. The texture unit coalesces
     * per-quad references before touching the cache; @p refs lets the
     * cache model report per-tap hit rates (the measurement a real
     * texture cache exposes, paper Table XIV) while performing one
     * residency access.
     */
    virtual void blockAccess(const Texture2D &texture, int level, int bx,
                             int by, int refs) = 0;
};

/**
 * The filtering engine. Stateless apart from statistics; bindings are
 * supplied per call so one Sampler serves all texture units.
 */
class Sampler
{
  public:
    /** Attach the cache model receiving block accesses (may be null). */
    void setListener(TexelAccessListener *listener)
    { _listener = listener; }

    /**
     * Sample a whole 2x2 quad. Texture-space derivatives are computed
     * from the difference between quad lane coordinates (lane order:
     * (x,y), (x+1,y), (x,y+1), (x+1,y+1)).
     *
     * @param texture  bound texture
     * @param state    bound sampler state
     * @param coords   four lane texture coordinates (u = x, v = y)
     * @param lod_bias extra per-instruction bias (TXB)
     * @param out      four sampled colours
     */
    void sampleQuad(const Texture2D &texture, const SamplerState &state,
                    const Vec4 coords[4], float lod_bias, Vec4 out[4]);

    /**
     * Sample a single coordinate at an explicit level of detail.
     * Exposed for tests; quad sampling is the production path.
     */
    Vec4 sampleLod(const Texture2D &texture, const SamplerState &state,
                   Vec2 uv, float lod);

    const SampleStats &stats() const { return _stats; }
    void resetStats() { _stats = SampleStats(); }

  private:
    /** One bilinear footprint at @p level. */
    Vec4 bilinearFetch(const Texture2D &texture, TexWrap wrap, int level,
                       Vec2 uv);

    /** Nearest texel at @p level. */
    Vec4 nearestFetch(const Texture2D &texture, TexWrap wrap, int level,
                      Vec2 uv);

    /** Trilinear (or bilinear when @p lod is integral/clamped). */
    Vec4 filteredFetch(const Texture2D &texture, const SamplerState &state,
                       Vec2 uv, float lod);

    void noteBlock(const Texture2D &texture, int level, int x, int y);
    void flushBlockSet(const Texture2D &texture);

    TexelAccessListener *_listener = nullptr;
    SampleStats _stats;

    // Per-quad distinct-block set: the texture unit coalesces the block
    // references of one quad before touching the cache, mirroring how
    // quad locality reduces cache traffic in real designs.
    static constexpr int kMaxQuadBlocks = 128;
    std::uint64_t _blockSet[kMaxQuadBlocks];
    std::uint32_t _blockRefs[kMaxQuadBlocks];
    int _blockCount = 0;
};

} // namespace wc3d::tex

#endif // WC3D_TEXTURE_SAMPLER_HH
