#include "texture/texture.hh"
#include <cmath>

#include <algorithm>

#include "common/log.hh"
#include "texture/dxt.hh"

namespace wc3d::tex {

namespace {

bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Box-filter an image down to half size (min 1x1). */
Image
downsample(const Image &src)
{
    int w = std::max(1, src.width() / 2);
    int h = std::max(1, src.height() / 2);
    Image dst(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int x0 = std::min(2 * x, src.width() - 1);
            int x1 = std::min(2 * x + 1, src.width() - 1);
            int y0 = std::min(2 * y, src.height() - 1);
            int y1 = std::min(2 * y + 1, src.height() - 1);
            Rgba8 p00 = src.at(x0, y0), p10 = src.at(x1, y0);
            Rgba8 p01 = src.at(x0, y1), p11 = src.at(x1, y1);
            auto avg = [](int a, int b, int c, int d) {
                return static_cast<std::uint8_t>((a + b + c + d + 2) / 4);
            };
            dst.set(x, y, {avg(p00.r, p10.r, p01.r, p11.r),
                           avg(p00.g, p10.g, p01.g, p11.g),
                           avg(p00.b, p10.b, p01.b, p11.b),
                           avg(p00.a, p10.a, p01.a, p11.a)});
        }
    }
    return dst;
}

/** Encode-then-decode an image through the DXT codec (lossy round trip). */
std::vector<Rgba8>
roundTripCompress(const Image &img, TexFormat format)
{
    std::vector<Rgba8> out(
        static_cast<std::size_t>(img.width()) * img.height());
    std::uint8_t encoded[16];
    Rgba8 block[16];
    for (int by = 0; by * kBlockDim < img.height(); ++by) {
        for (int bx = 0; bx * kBlockDim < img.width(); ++bx) {
            for (int ty = 0; ty < kBlockDim; ++ty) {
                for (int tx = 0; tx < kBlockDim; ++tx) {
                    int x = std::min(bx * kBlockDim + tx, img.width() - 1);
                    int y = std::min(by * kBlockDim + ty, img.height() - 1);
                    block[ty * kBlockDim + tx] = img.at(x, y);
                }
            }
            encodeBlock(block, format, encoded);
            decodeBlock(encoded, format, block);
            for (int ty = 0; ty < kBlockDim; ++ty) {
                for (int tx = 0; tx < kBlockDim; ++tx) {
                    int x = bx * kBlockDim + tx;
                    int y = by * kBlockDim + ty;
                    if (x < img.width() && y < img.height()) {
                        out[static_cast<std::size_t>(y) * img.width() + x] =
                            block[ty * kBlockDim + tx];
                    }
                }
            }
        }
    }
    return out;
}

} // namespace

Texture2D::Texture2D(std::string name, const Image &base, TexFormat format)
    : _name(std::move(name)), _format(format), _width(base.width()),
      _height(base.height())
{
    WC3D_ASSERT(isPow2(_width) && isPow2(_height));
    buildLevels(base);
}

void
Texture2D::buildLevels(const Image &base)
{
    Image current = base;
    std::uint64_t virt_off = 0;
    std::uint64_t mem_off = 0;
    for (;;) {
        Level lvl;
        lvl.width = current.width();
        lvl.height = current.height();
        lvl.blocksX = (lvl.width + kBlockDim - 1) / kBlockDim;
        lvl.blocksY = (lvl.height + kBlockDim - 1) / kBlockDim;
        if (isCompressed(_format)) {
            lvl.decoded = roundTripCompress(current, _format);
        } else {
            lvl.decoded = current.pixels();
        }
        lvl.virtOffset = virt_off;
        lvl.memOffset = mem_off;
        std::uint64_t blocks =
            static_cast<std::uint64_t>(lvl.blocksX) * lvl.blocksY;
        virt_off += blocks * kDecodedBlockBytes;
        mem_off += blocks * blockBytes(_format);
        _decodedBytes += blocks * kDecodedBlockBytes;
        _storageBytes += blocks * blockBytes(_format);
        bool last = lvl.width == 1 && lvl.height == 1;
        _levels.push_back(std::move(lvl));
        if (last)
            break;
        current = downsample(current);
    }
}

const Texture2D::Level &
Texture2D::level(int l) const
{
    WC3D_ASSERT(l >= 0 && l < levels());
    return _levels[static_cast<std::size_t>(l)];
}

int
Texture2D::levelWidth(int l) const
{
    return level(l).width;
}

int
Texture2D::levelHeight(int l) const
{
    return level(l).height;
}

int
Texture2D::levelBlocksX(int l) const
{
    return level(l).blocksX;
}

int
Texture2D::levelBlocksY(int l) const
{
    return level(l).blocksY;
}

Rgba8
Texture2D::texel(int l, int x, int y) const
{
    const Level &lvl = level(l);
    x = std::clamp(x, 0, lvl.width - 1);
    y = std::clamp(y, 0, lvl.height - 1);
    return lvl.decoded[static_cast<std::size_t>(y) * lvl.width + x];
}

void
Texture2D::bindMemory(memsys::MemoryController &mc)
{
    WC3D_ASSERT(!_memBound);
    _virtBase = mc.allocate(_decodedBytes, 256);
    _memBase = mc.allocate(_storageBytes, 256);
    _memBound = true;
}

std::uint64_t
Texture2D::blockVirtualAddress(int l, int bx, int by) const
{
    WC3D_ASSERT(_memBound);
    const Level &lvl = level(l);
    WC3D_ASSERT(bx >= 0 && bx < lvl.blocksX && by >= 0 && by < lvl.blocksY);
    std::uint64_t block =
        static_cast<std::uint64_t>(by) * lvl.blocksX + bx;
    return _virtBase + lvl.virtOffset + block * kDecodedBlockBytes;
}

std::uint64_t
Texture2D::blockMemAddress(int l, int bx, int by) const
{
    WC3D_ASSERT(_memBound);
    const Level &lvl = level(l);
    WC3D_ASSERT(bx >= 0 && bx < lvl.blocksX && by >= 0 && by < lvl.blocksY);
    std::uint64_t block =
        static_cast<std::uint64_t>(by) * lvl.blocksX + bx;
    return _memBase + lvl.memOffset + block * blockBytes(_format);
}

Texture2D
Texture2D::checkerboard(std::string name, int size, int cell, Rgba8 a,
                        Rgba8 b, TexFormat format)
{
    WC3D_ASSERT(cell > 0);
    Image img(size, size);
    for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x)
            img.set(x, y, (((x / cell) + (y / cell)) & 1) ? b : a);
    return Texture2D(std::move(name), img, format);
}

Texture2D
Texture2D::noise(std::string name, int size, std::uint64_t seed,
                 TexFormat format, bool alpha_noise)
{
    Rng rng(seed);
    // Smooth value noise: random lattice at 1/8 resolution, bilinearly
    // upsampled, so DXT compression behaves like it does on real art
    // (smooth regions compress well, detail regions less so).
    int lattice = std::max(2, size / 8);
    std::vector<float> values(
        static_cast<std::size_t>(lattice) * lattice);
    for (auto &v : values)
        v = rng.nextFloat();
    auto at = [&](int x, int y) {
        x &= lattice - 1;
        y &= lattice - 1;
        return values[static_cast<std::size_t>(y) * lattice + x];
    };
    Image img(size, size);
    for (int y = 0; y < size; ++y) {
        for (int x = 0; x < size; ++x) {
            float fx = static_cast<float>(x) * lattice / size;
            float fy = static_cast<float>(y) * lattice / size;
            int ix = static_cast<int>(fx);
            int iy = static_cast<int>(fy);
            float tx = fx - ix, ty = fy - iy;
            float v = std::lerp(
                std::lerp(at(ix, iy), at(ix + 1, iy), tx),
                std::lerp(at(ix, iy + 1), at(ix + 1, iy + 1), tx), ty);
            auto g = floatToUnorm8(v);
            // Alpha carries the noise too so alpha-test (KIL) materials
            // and alpha blending see realistic variation.
            img.set(x, y, {g, static_cast<std::uint8_t>(g / 2 + 64),
                           static_cast<std::uint8_t>(255 - g),
                           alpha_noise
                               ? static_cast<std::uint8_t>(255 - g)
                               : static_cast<std::uint8_t>(255)});
        }
    }
    return Texture2D(std::move(name), img, format);
}

Texture2D
Texture2D::gradient(std::string name, int size, Rgba8 from, Rgba8 to,
                    TexFormat format)
{
    Image img(size, size);
    for (int y = 0; y < size; ++y) {
        float t = size > 1 ? static_cast<float>(y) / (size - 1) : 0.0f;
        for (int x = 0; x < size; ++x) {
            auto mix = [t](std::uint8_t a, std::uint8_t b) {
                return static_cast<std::uint8_t>(a + (b - a) * t);
            };
            img.set(x, y, {mix(from.r, to.r), mix(from.g, to.g),
                           mix(from.b, to.b), mix(from.a, to.a)});
        }
    }
    return Texture2D(std::move(name), img, format);
}

} // namespace wc3d::tex
