#include "texture/texcache.hh"

#include "common/log.hh"
#include "common/prof.hh"

namespace wc3d::tex {

TextureCache::TextureCache(const TexCacheConfig &config,
                           memsys::MemoryController *memory)
    : _l0(config.l0Ways, config.l0Sets, config.l0Line),
      _l1(config.l1Ways, config.l1Sets, config.l1Line),
      _memory(memory)
{
}

void
TextureCache::blockAccess(const Texture2D &texture, int level, int bx,
                          int by, int refs)
{
    WC3D_ASSERT(texture.memoryBound());
    std::uint64_t vaddr = texture.blockVirtualAddress(level, bx, by);
    auto r0 = _l0.access(vaddr, false);
    // The quad's further taps of the same block are guaranteed hits;
    // credit them so hit rates use per-tap semantics.
    if (refs > 1)
        _l0.creditFilteredHits(refs - 1);
    if (r0.hit)
        return;

    // L0 fill: fetch the compressed block through L1. A 4x4 block is at
    // most one L1 line (8/16B DXT, 64B RGBA8), so a single access
    // suffices.
    std::uint64_t maddr = texture.blockMemAddress(level, bx, by);
    auto r1 = _l1.access(maddr, false);
    if (!r1.hit && _memory)
        _memory->read(memsys::Client::Texture,
                      static_cast<std::uint64_t>(_l1.lineSize()));
}

void
TextureCache::resetStats()
{
    _l0.resetStats();
    _l1.resetStats();
}

void
TextureCache::invalidate()
{
    _l0.invalidateAll();
    _l1.invalidateAll();
}

TextureUnit::TextureUnit(const TexCacheConfig &config,
                         memsys::MemoryController *memory)
    : _cache(config, memory)
{
    _sampler.setListener(&_cache);
}

void
TextureUnit::bind(int unit, const Texture2D *texture, SamplerState state)
{
    WC3D_PROF_SCOPE("texture.bind");
    WC3D_ASSERT(unit >= 0 && unit < shader::kMaxSamplers);
    _bindings[static_cast<std::size_t>(unit)] = {texture, state};
}

void
TextureUnit::unbind(int unit)
{
    WC3D_ASSERT(unit >= 0 && unit < shader::kMaxSamplers);
    _bindings[static_cast<std::size_t>(unit)] = Binding();
}

const Texture2D *
TextureUnit::boundTexture(int unit) const
{
    WC3D_ASSERT(unit >= 0 && unit < shader::kMaxSamplers);
    return _bindings[static_cast<std::size_t>(unit)].texture;
}

void
TextureUnit::sampleQuad(int sampler, const Vec4 coords[4], float lod_bias,
                        Vec4 out[4])
{
    WC3D_ASSERT(sampler >= 0 && sampler < shader::kMaxSamplers);
    const Binding &b = _bindings[static_cast<std::size_t>(sampler)];
    if (!b.texture) {
        // Unbound unit: sample opaque black, like a disabled stage.
        for (int l = 0; l < 4; ++l)
            out[l] = {0.0f, 0.0f, 0.0f, 1.0f};
        return;
    }
    _sampler.sampleQuad(*b.texture, b.state, coords, lod_bias, out);
}

} // namespace wc3d::tex
