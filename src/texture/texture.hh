/**
 * @file
 * Mip-mapped 2D textures. Content is stored in the real on-card format
 * (RGBA8 or DXT-compressed blocks); compressed levels are encoded with
 * the real codec and decoded back, so sampling observes the lossy data
 * and the memory footprint/addresses reflect the compressed layout.
 */

#ifndef WC3D_TEXTURE_TEXTURE_HH
#define WC3D_TEXTURE_TEXTURE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/image.hh"
#include "common/rng.hh"
#include "memory/controller.hh"
#include "texture/format.hh"

namespace wc3d::tex {

/**
 * A 2D texture with a full mip chain.
 *
 * Two address spaces are exposed for the two texture cache levels:
 * - the "virtual" (decompressed) space tags the L0 cache: one 64-byte
 *   line per 4x4-texel block;
 * - the "memory" (stored) space tags the L1 cache and GDDR traffic: one
 *   blockBytes(format) record per block.
 */
class Texture2D
{
  public:
    /** Build from a base image, generating a full mip chain. */
    Texture2D(std::string name, const Image &base, TexFormat format);

    /** Procedural checkerboard (power-of-two @p size). */
    static Texture2D checkerboard(std::string name, int size, int cell,
                                  Rgba8 a, Rgba8 b,
                                  TexFormat format = TexFormat::DXT1);

    /**
     * Procedural value noise (power-of-two @p size). With
     * @p alpha_noise the alpha channel carries inverted noise (for
     * alpha-tested materials); otherwise alpha is opaque.
     */
    static Texture2D noise(std::string name, int size, std::uint64_t seed,
                           TexFormat format = TexFormat::DXT1,
                           bool alpha_noise = false);

    /** Procedural axis gradient. */
    static Texture2D gradient(std::string name, int size, Rgba8 from,
                              Rgba8 to,
                              TexFormat format = TexFormat::DXT1);

    const std::string &name() const { return _name; }
    TexFormat format() const { return _format; }
    int width() const { return _width; }
    int height() const { return _height; }
    int levels() const { return static_cast<int>(_levels.size()); }

    int levelWidth(int level) const;
    int levelHeight(int level) const;

    /** Blocks across / down at @p level (4-texel blocks, padded). */
    int levelBlocksX(int level) const;
    int levelBlocksY(int level) const;

    /** Decoded texel at (x, y) of @p level; coordinates are clamped. */
    Rgba8 texel(int level, int x, int y) const;

    /** Stored (possibly compressed) footprint over all levels. */
    std::uint64_t storageBytes() const { return _storageBytes; }

    /** Decoded footprint over all levels (for ratio reporting). */
    std::uint64_t decodedBytes() const { return _decodedBytes; }

    /**
     * Assign address ranges from @p mc for both address spaces.
     * Must be called once before cache-accounted sampling.
     */
    void bindMemory(memsys::MemoryController &mc);

    /** @return true once bindMemory() has been called. */
    bool memoryBound() const { return _memBound; }

    /** L0 (virtual/decompressed) address of block (bx, by) at level. */
    std::uint64_t blockVirtualAddress(int level, int bx, int by) const;

    /** L1/GDDR (stored) address of block (bx, by) at level. */
    std::uint64_t blockMemAddress(int level, int bx, int by) const;

  private:
    struct Level
    {
        int width = 0;
        int height = 0;
        int blocksX = 0;
        int blocksY = 0;
        std::vector<Rgba8> decoded;        // width*height texels
        std::uint64_t virtOffset = 0;      // block-space offsets
        std::uint64_t memOffset = 0;
    };

    void buildLevels(const Image &base);
    const Level &level(int l) const;

    std::string _name;
    TexFormat _format = TexFormat::RGBA8;
    int _width = 0;
    int _height = 0;
    std::vector<Level> _levels;
    std::uint64_t _storageBytes = 0;
    std::uint64_t _decodedBytes = 0;
    bool _memBound = false;
    std::uint64_t _virtBase = 0;
    std::uint64_t _memBase = 0;
};

} // namespace wc3d::tex

#endif // WC3D_TEXTURE_TEXTURE_HH
