#include "texture/dxt.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace wc3d::tex {

std::uint16_t
packRgb565(Rgba8 c)
{
    return static_cast<std::uint16_t>(((c.r >> 3) << 11) |
                                      ((c.g >> 2) << 5) |
                                      (c.b >> 3));
}

Rgba8
unpackRgb565(std::uint16_t v)
{
    std::uint8_t r5 = (v >> 11) & 0x1f;
    std::uint8_t g6 = (v >> 5) & 0x3f;
    std::uint8_t b5 = v & 0x1f;
    // Standard bit replication expansion.
    return {static_cast<std::uint8_t>((r5 << 3) | (r5 >> 2)),
            static_cast<std::uint8_t>((g6 << 2) | (g6 >> 4)),
            static_cast<std::uint8_t>((b5 << 3) | (b5 >> 2)), 255};
}

namespace {

int
colorDistSq(Rgba8 a, Rgba8 b)
{
    int dr = a.r - b.r, dg = a.g - b.g, db = a.b - b.b;
    return dr * dr + dg * dg + db * db;
}

/**
 * Encode the colour part (8 bytes) shared by all DXT formats.
 * @param use_alpha_punch DXT1 1-bit-alpha mode when any texel a < 128
 */
void
encodeColorBlock(const Rgba8 texels[16], bool allow_punch_through,
                 std::uint8_t *out)
{
    // Endpoints: min/max along the luminance axis (simple but effective).
    auto lum = [](Rgba8 c) { return 2 * c.r + 5 * c.g + c.b; };
    int min_i = 0, max_i = 0;
    for (int i = 1; i < 16; ++i) {
        if (lum(texels[i]) < lum(texels[min_i]))
            min_i = i;
        if (lum(texels[i]) > lum(texels[max_i]))
            max_i = i;
    }
    std::uint16_t c0 = packRgb565(texels[max_i]);
    std::uint16_t c1 = packRgb565(texels[min_i]);

    bool punch = false;
    if (allow_punch_through) {
        for (int i = 0; i < 16; ++i)
            punch |= texels[i].a < 128;
    }

    // Four-colour mode needs c0 > c1; three-colour (punch-through) needs
    // c0 <= c1.
    if (!punch && c0 < c1)
        std::swap(c0, c1);
    if (punch && c0 > c1)
        std::swap(c0, c1);
    if (!punch && c0 == c1) {
        // Degenerate: force distinct so mode stays four-colour; palette
        // entries all map to (almost) the same colour anyway.
        if (c0 == 0xffff) {
            c1 = static_cast<std::uint16_t>(c1 - 1);
        } else {
            c0 = static_cast<std::uint16_t>(c0 + 1);
        }
    }

    Rgba8 palette[4];
    palette[0] = unpackRgb565(c0);
    palette[1] = unpackRgb565(c1);
    if (!punch) {
        for (int ch = 0; ch < 3; ++ch) {
            (&palette[2].r)[ch] = static_cast<std::uint8_t>(
                (2 * (&palette[0].r)[ch] + (&palette[1].r)[ch]) / 3);
            (&palette[3].r)[ch] = static_cast<std::uint8_t>(
                ((&palette[0].r)[ch] + 2 * (&palette[1].r)[ch]) / 3);
        }
        palette[2].a = palette[3].a = 255;
    } else {
        for (int ch = 0; ch < 3; ++ch) {
            (&palette[2].r)[ch] = static_cast<std::uint8_t>(
                ((&palette[0].r)[ch] + (&palette[1].r)[ch]) / 2);
        }
        palette[2].a = 255;
        palette[3] = {0, 0, 0, 0};
    }

    std::uint32_t indices = 0;
    for (int i = 0; i < 16; ++i) {
        int best = 0;
        if (punch && texels[i].a < 128) {
            best = 3;
        } else {
            int best_d = colorDistSq(texels[i], palette[0]);
            int limit = punch ? 3 : 4;
            for (int pidx = 1; pidx < limit; ++pidx) {
                int d = colorDistSq(texels[i], palette[pidx]);
                if (d < best_d) {
                    best_d = d;
                    best = pidx;
                }
            }
        }
        indices |= static_cast<std::uint32_t>(best) << (2 * i);
    }

    out[0] = static_cast<std::uint8_t>(c0 & 0xff);
    out[1] = static_cast<std::uint8_t>(c0 >> 8);
    out[2] = static_cast<std::uint8_t>(c1 & 0xff);
    out[3] = static_cast<std::uint8_t>(c1 >> 8);
    std::memcpy(out + 4, &indices, 4);
}

void
decodeColorBlock(const std::uint8_t *data, bool dxt1_mode, Rgba8 texels[16])
{
    std::uint16_t c0 = static_cast<std::uint16_t>(data[0] | (data[1] << 8));
    std::uint16_t c1 = static_cast<std::uint16_t>(data[2] | (data[3] << 8));
    std::uint32_t indices;
    std::memcpy(&indices, data + 4, 4);

    Rgba8 palette[4];
    palette[0] = unpackRgb565(c0);
    palette[1] = unpackRgb565(c1);
    bool four_color = !dxt1_mode || c0 > c1;
    if (four_color) {
        for (int ch = 0; ch < 3; ++ch) {
            (&palette[2].r)[ch] = static_cast<std::uint8_t>(
                (2 * (&palette[0].r)[ch] + (&palette[1].r)[ch]) / 3);
            (&palette[3].r)[ch] = static_cast<std::uint8_t>(
                ((&palette[0].r)[ch] + 2 * (&palette[1].r)[ch]) / 3);
        }
        palette[2].a = palette[3].a = 255;
    } else {
        for (int ch = 0; ch < 3; ++ch) {
            (&palette[2].r)[ch] = static_cast<std::uint8_t>(
                ((&palette[0].r)[ch] + (&palette[1].r)[ch]) / 2);
        }
        palette[2].a = 255;
        palette[3] = {0, 0, 0, 0};
    }

    for (int i = 0; i < 16; ++i)
        texels[i] = palette[(indices >> (2 * i)) & 0x3];
}

/** DXT5 interpolated-alpha block (8 bytes). */
void
encodeAlphaBlockDxt5(const Rgba8 texels[16], std::uint8_t *out)
{
    std::uint8_t a0 = texels[0].a, a1 = texels[0].a;
    for (int i = 1; i < 16; ++i) {
        a0 = std::max(a0, texels[i].a);
        a1 = std::min(a1, texels[i].a);
    }
    if (a0 == a1) {
        // Avoid the 6-entry special mode; widen trivially.
        if (a0 < 255) {
            ++a0;
        } else {
            --a1;
        }
    }
    std::uint8_t palette[8];
    palette[0] = a0;
    palette[1] = a1;
    for (int i = 1; i < 7; ++i) {
        palette[i + 1] = static_cast<std::uint8_t>(
            ((7 - i) * a0 + i * a1) / 7);
    }
    std::uint64_t bits = 0;
    for (int i = 0; i < 16; ++i) {
        int best = 0;
        int best_d = std::abs(static_cast<int>(texels[i].a) - palette[0]);
        for (int p = 1; p < 8; ++p) {
            int d = std::abs(static_cast<int>(texels[i].a) - palette[p]);
            if (d < best_d) {
                best_d = d;
                best = p;
            }
        }
        bits |= static_cast<std::uint64_t>(best) << (3 * i);
    }
    out[0] = a0;
    out[1] = a1;
    for (int b = 0; b < 6; ++b)
        out[2 + b] = static_cast<std::uint8_t>((bits >> (8 * b)) & 0xff);
}

void
decodeAlphaBlockDxt5(const std::uint8_t *data, std::uint8_t alphas[16])
{
    std::uint8_t a0 = data[0], a1 = data[1];
    std::uint8_t palette[8];
    palette[0] = a0;
    palette[1] = a1;
    if (a0 > a1) {
        for (int i = 1; i < 7; ++i) {
            palette[i + 1] = static_cast<std::uint8_t>(
                ((7 - i) * a0 + i * a1) / 7);
        }
    } else {
        for (int i = 1; i < 5; ++i) {
            palette[i + 1] = static_cast<std::uint8_t>(
                ((5 - i) * a0 + i * a1) / 5);
        }
        palette[6] = 0;
        palette[7] = 255;
    }
    std::uint64_t bits = 0;
    for (int b = 0; b < 6; ++b)
        bits |= static_cast<std::uint64_t>(data[2 + b]) << (8 * b);
    for (int i = 0; i < 16; ++i)
        alphas[i] = palette[(bits >> (3 * i)) & 0x7];
}

} // namespace

void
encodeBlock(const Rgba8 texels[16], TexFormat format, std::uint8_t *out)
{
    switch (format) {
      case TexFormat::DXT1:
        encodeColorBlock(texels, true, out);
        break;
      case TexFormat::DXT3: {
        // Explicit 4-bit alpha, then the colour block.
        for (int i = 0; i < 8; ++i) {
            std::uint8_t lo = static_cast<std::uint8_t>(
                texels[2 * i].a >> 4);
            std::uint8_t hi = static_cast<std::uint8_t>(
                texels[2 * i + 1].a >> 4);
            out[i] = static_cast<std::uint8_t>(lo | (hi << 4));
        }
        encodeColorBlock(texels, false, out + 8);
        break;
      }
      case TexFormat::DXT5:
        encodeAlphaBlockDxt5(texels, out);
        encodeColorBlock(texels, false, out + 8);
        break;
      default:
        panic("encodeBlock: not a DXT format");
    }
}

void
decodeBlock(const std::uint8_t *data, TexFormat format, Rgba8 texels[16])
{
    switch (format) {
      case TexFormat::DXT1:
        decodeColorBlock(data, true, texels);
        break;
      case TexFormat::DXT3: {
        decodeColorBlock(data + 8, false, texels);
        for (int i = 0; i < 16; ++i) {
            std::uint8_t nib = static_cast<std::uint8_t>(
                (data[i / 2] >> ((i & 1) * 4)) & 0xf);
            texels[i].a = static_cast<std::uint8_t>(nib * 17);
        }
        break;
      }
      case TexFormat::DXT5: {
        decodeColorBlock(data + 8, false, texels);
        std::uint8_t alphas[16];
        decodeAlphaBlockDxt5(data, alphas);
        for (int i = 0; i < 16; ++i)
            texels[i].a = alphas[i];
        break;
      }
      default:
        panic("decodeBlock: not a DXT format");
    }
}

} // namespace wc3d::tex
