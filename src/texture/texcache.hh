/**
 * @file
 * Two-level texture cache, as in the ATTILA architecture the paper
 * simulates: "The texture cache implements two levels: level 0 stores
 * uncompressed data and level 1 stores compressed data." L0 is tagged
 * in the decompressed (virtual) address space; an L0 miss accesses L1
 * in the compressed address space; an L1 miss reads one line from GDDR,
 * charged to the Texture client.
 *
 * Also provides TextureUnit, the bridge from shader TEX instructions to
 * the sampler + cache.
 */

#ifndef WC3D_TEXTURE_TEXCACHE_HH
#define WC3D_TEXTURE_TEXCACHE_HH

#include <array>

#include "memory/cache.hh"
#include "memory/controller.hh"
#include "shader/interp.hh"
#include "texture/sampler.hh"

namespace wc3d::tex {

/** Geometry of the two texture cache levels (paper Table XIV). */
struct TexCacheConfig
{
    int l0Ways = 64;  ///< "4 KB, 64w x 64B" fully associative
    int l0Sets = 1;
    int l0Line = 64;
    int l1Ways = 16;  ///< "16 KB, 16w x 16s x 64B"
    int l1Sets = 16;
    int l1Line = 64;
};

/**
 * The texture cache hierarchy. Receives distinct-block accesses from
 * the Sampler and models residency and memory traffic.
 */
class TextureCache : public TexelAccessListener
{
  public:
    TextureCache(const TexCacheConfig &config,
                 memsys::MemoryController *memory);

    void blockAccess(const Texture2D &texture, int level, int bx,
                     int by, int refs) override;

    const memsys::CacheStats &l0Stats() const { return _l0.stats(); }
    const memsys::CacheStats &l1Stats() const { return _l1.stats(); }
    const memsys::CacheModel &l0() const { return _l0; }
    const memsys::CacheModel &l1() const { return _l1; }

    void resetStats();

    /** Drop all residency (e.g. between independent runs). */
    void invalidate();

  private:
    memsys::CacheModel _l0;
    memsys::CacheModel _l1;
    memsys::MemoryController *_memory;
};

/**
 * Texture unit: holds per-unit (texture, sampler-state) bindings and
 * services shader texture instructions through a Sampler and the cache.
 */
class TextureUnit : public shader::TextureSampleHandler
{
  public:
    TextureUnit(const TexCacheConfig &config,
                memsys::MemoryController *memory);

    /** Bind @p texture with @p state to sampler slot @p unit. */
    void bind(int unit, const Texture2D *texture, SamplerState state);

    /** Remove the binding of slot @p unit. */
    void unbind(int unit);

    const Texture2D *boundTexture(int unit) const;

    void sampleQuad(int sampler, const Vec4 coords[4], float lod_bias,
                    Vec4 out[4]) override;

    Sampler &sampler() { return _sampler; }
    TextureCache &cache() { return _cache; }
    const Sampler &sampler() const { return _sampler; }
    const TextureCache &cache() const { return _cache; }

  private:
    struct Binding
    {
        const Texture2D *texture = nullptr;
        SamplerState state;
    };

    std::array<Binding, shader::kMaxSamplers> _bindings;
    TextureCache _cache;
    Sampler _sampler;
};

} // namespace wc3d::tex

#endif // WC3D_TEXTURE_TEXCACHE_HH
