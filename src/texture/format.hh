/**
 * @file
 * Texture storage formats. The paper's workloads use compressed textures
 * (DXT1/DXT3/DXT5) for most texture data, which together with the texture
 * cache "reduces almost to a tenth the required BW for texture data"
 * (Section III.E) — so the formats and their block geometry are modelled
 * exactly.
 */

#ifndef WC3D_TEXTURE_FORMAT_HH
#define WC3D_TEXTURE_FORMAT_HH

#include <cstdint>

namespace wc3d::tex {

/** Supported texture storage formats. */
enum class TexFormat : std::uint8_t
{
    RGBA8, ///< 4 bytes per texel, uncompressed
    DXT1,  ///< 4x4 block, 8 bytes (opaque / 1-bit alpha)
    DXT3,  ///< 4x4 block, 16 bytes (explicit 4-bit alpha)
    DXT5,  ///< 4x4 block, 16 bytes (interpolated alpha)
};

/** Human-readable format name. */
const char *formatName(TexFormat f);

/** Block width/height in texels (4 for DXT, 1 for RGBA8 conceptually;
 *  for cache accounting RGBA8 also uses 4x4 tiles = 64B lines). */
constexpr int kBlockDim = 4;

/** Bytes of one 4x4-texel block in format @p f. */
std::uint32_t blockBytes(TexFormat f);

/** Bytes of one 4x4-texel block decoded to RGBA8 (always 64). */
constexpr std::uint32_t kDecodedBlockBytes = kBlockDim * kBlockDim * 4;

/** @return true when @p f is a DXT block-compressed format. */
bool isCompressed(TexFormat f);

/** Compression ratio (decoded bytes / stored bytes). */
double compressionRatio(TexFormat f);

} // namespace wc3d::tex

#endif // WC3D_TEXTURE_FORMAT_HH
