#include "memory/cache.hh"

#include "common/log.hh"

namespace wc3d::memsys {

namespace {
bool
isPow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}
} // namespace

CacheModel::CacheModel(int ways, int sets, int line_size, Replacement policy)
    : _ways(ways), _sets(sets), _lineSize(line_size), _policy(policy),
      _lines(static_cast<std::size_t>(ways) * sets)
{
    WC3D_ASSERT(ways > 0);
    WC3D_ASSERT(isPow2(sets));
    WC3D_ASSERT(isPow2(line_size));
}

CacheModel::Line *
CacheModel::findLine(std::uint64_t line_number)
{
    std::size_t set = static_cast<std::size_t>(line_number) & (_sets - 1);
    Line *base = &_lines[set * _ways];
    for (int w = 0; w < _ways; ++w) {
        if (base[w].valid && base[w].tag == line_number)
            return &base[w];
    }
    return nullptr;
}

CacheModel::Line &
CacheModel::victimLine(std::uint64_t line_number)
{
    std::size_t set = static_cast<std::size_t>(line_number) & (_sets - 1);
    Line *base = &_lines[set * _ways];
    Line *victim = &base[0];
    for (int w = 0; w < _ways; ++w) {
        if (!base[w].valid)
            return base[w];
        if (base[w].stamp < victim->stamp)
            victim = &base[w];
    }
    return *victim;
}

CacheAccessResult
CacheModel::access(std::uint64_t address, bool is_write)
{
    CacheAccessResult result;
    std::uint64_t line_number = address / _lineSize;
    ++_tick;
    ++_stats.accesses;

    if (Line *line = findLine(line_number)) {
        result.hit = true;
        ++_stats.hits;
        if (is_write)
            line->dirty = true;
        if (_policy == Replacement::LRU)
            line->stamp = _tick;
        return result;
    }

    ++_stats.misses;
    Line &victim = victimLine(line_number);
    if (victim.valid && victim.dirty) {
        result.writeback = true;
        result.writebackAddress = victim.tag * _lineSize;
        ++_stats.writebacks;
    }
    victim.valid = true;
    victim.dirty = is_write;
    victim.tag = line_number;
    victim.stamp = _tick;
    result.fillAddress = line_number * _lineSize;
    return result;
}

bool
CacheModel::contains(std::uint64_t address) const
{
    std::uint64_t line_number = address / _lineSize;
    std::size_t set = static_cast<std::size_t>(line_number) & (_sets - 1);
    const Line *base = &_lines[set * _ways];
    for (int w = 0; w < _ways; ++w) {
        if (base[w].valid && base[w].tag == line_number)
            return true;
    }
    return false;
}

void
CacheModel::invalidateAll()
{
    for (auto &line : _lines)
        line = Line();
}

void
CacheModel::invalidateLine(std::uint64_t address)
{
    if (Line *line = findLine(address / _lineSize))
        *line = Line();
}

} // namespace wc3d::memsys
