/**
 * @file
 * Per-block state directory used for framebuffer fast clear and
 * compression ([18], ATI Hyper-Z). GPU surfaces are divided into
 * fixed-size blocks; each block is either Cleared (no memory backing
 * needed), Compressed (half-size backing) or Uncompressed.
 *
 * The directory is assumed to live on-die, so state reads/updates cost
 * no GDDR bandwidth — exactly the mechanism the paper credits for the
 * z/colour BW reductions in Table XVII.
 */

#ifndef WC3D_MEMORY_BLOCKSTATE_HH
#define WC3D_MEMORY_BLOCKSTATE_HH

#include <cstdint>
#include <vector>

namespace wc3d::memsys {

/** Backing state of one surface block. */
enum class BlockState : std::uint8_t
{
    Cleared,      ///< whole block equals the clear value; zero-byte fill
    Compressed,   ///< block stored compressed (half the bytes)
    Uncompressed, ///< block stored raw
};

/** Directory of block states for one surface. */
class BlockStateDirectory
{
  public:
    /** @param blocks number of blocks in the surface. */
    explicit BlockStateDirectory(std::size_t blocks = 0);

    /** Mark every block Cleared (the fast-clear operation). */
    void fastClear();

    /** Number of blocks. */
    std::size_t blocks() const { return _states.size(); }

    /** Resize (used when a surface is (re)allocated). */
    void resize(std::size_t blocks);

    BlockState state(std::size_t block) const { return _states.at(block); }
    void setState(std::size_t block, BlockState s) { _states.at(block) = s; }

    /** Count of blocks currently in @p s. */
    std::size_t countInState(BlockState s) const;

  private:
    std::vector<BlockState> _states;
};

} // namespace wc3d::memsys

#endif // WC3D_MEMORY_BLOCKSTATE_HH
