#include "memory/compression.hh"

#include <cstdlib>

#include "common/log.hh"

namespace wc3d::memsys {

bool
zBlockCompressible(std::span<const std::uint32_t> words, int width)
{
    WC3D_ASSERT(width > 0 && words.size() % static_cast<std::size_t>(width)
                == 0);
    int height = static_cast<int>(words.size()) / width;
    if (width < 2 || height < 2)
        return false;

    // Stencil (low byte) must be uniform for the block to compress.
    std::uint32_t stencil = words[0] & 0xffu;
    for (std::uint32_t w : words) {
        if ((w & 0xffu) != stencil)
            return false;
    }

    auto depth = [&](int x, int y) -> std::int64_t {
        return static_cast<std::int64_t>(words[static_cast<std::size_t>(y) *
                                               width + x] >> 8);
    };

    // Plane through the (0,0) sample with per-axis gradients taken from
    // the immediate neighbours.
    std::int64_t z00 = depth(0, 0);
    std::int64_t dzdx = depth(1, 0) - z00;
    std::int64_t dzdy = depth(0, 1) - z00;

    constexpr std::int64_t kDeltaLimit = 1 << 11; // 12-bit signed residual
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            std::int64_t predicted = z00 + dzdx * x + dzdy * y;
            std::int64_t residual = depth(x, y) - predicted;
            if (residual < -kDeltaLimit || residual >= kDeltaLimit)
                return false;
        }
    }
    return true;
}

bool
colorBlockCompressible(std::span<const std::uint32_t> words)
{
    if (words.empty())
        return false;
    std::uint32_t first = words[0];
    for (std::uint32_t w : words) {
        if (w != first)
            return false;
    }
    return true;
}

} // namespace wc3d::memsys
