#include "memory/controller.hh"

#include "common/log.hh"

namespace wc3d::memsys {

const char *
clientName(Client c)
{
    switch (c) {
      case Client::CommandProcessor:
        return "CP";
      case Client::Vertex:
        return "Vertex";
      case Client::ZStencil:
        return "Z&Stencil";
      case Client::Texture:
        return "Texture";
      case Client::Color:
        return "Color";
      case Client::Dac:
        return "DAC";
      default:
        return "?";
    }
}

std::uint64_t
TrafficSnapshot::totalRead() const
{
    std::uint64_t t = 0;
    for (auto b : readBytes)
        t += b;
    return t;
}

std::uint64_t
TrafficSnapshot::totalWrite() const
{
    std::uint64_t t = 0;
    for (auto b : writeBytes)
        t += b;
    return t;
}

TrafficSnapshot
TrafficSnapshot::since(const TrafficSnapshot &earlier) const
{
    TrafficSnapshot d;
    for (int i = 0; i < kNumClients; ++i) {
        WC3D_ASSERT(readBytes[i] >= earlier.readBytes[i]);
        WC3D_ASSERT(writeBytes[i] >= earlier.writeBytes[i]);
        d.readBytes[i] = readBytes[i] - earlier.readBytes[i];
        d.writeBytes[i] = writeBytes[i] - earlier.writeBytes[i];
    }
    return d;
}

MemoryController::MemoryController() = default;

void
MemoryController::read(Client client, std::uint64_t bytes)
{
    _traffic.readBytes[static_cast<int>(client)] += bytes;
}

void
MemoryController::write(Client client, std::uint64_t bytes)
{
    _traffic.writeBytes[static_cast<int>(client)] += bytes;
}

std::uint64_t
MemoryController::allocate(std::uint64_t bytes, std::uint64_t align)
{
    WC3D_ASSERT(align != 0 && (align & (align - 1)) == 0);
    std::uint64_t base = (_nextAddress + align - 1) & ~(align - 1);
    _nextAddress = base + bytes;
    return base;
}

void
MemoryController::resetTraffic()
{
    _traffic = TrafficSnapshot();
}

} // namespace wc3d::memsys
