/**
 * @file
 * GPU memory (GDDR) traffic accounting. The paper's memory tables
 * (XV, XVI, XVII) are byte totals attributed to pipeline clients
 * (Vertex, Z&Stencil, Texture, Color, DAC, Command Processor); this
 * controller is the single point where those bytes are charged.
 *
 * The controller also hands out address ranges so buffers, textures and
 * framebuffer surfaces occupy disjoint regions of the simulated address
 * space (cache models index by address).
 */

#ifndef WC3D_MEMORY_CONTROLLER_HH
#define WC3D_MEMORY_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <string>

namespace wc3d::memsys {

/** Pipeline units that consume GPU memory bandwidth (paper Table XVI). */
enum class Client : int
{
    CommandProcessor = 0,
    Vertex,
    ZStencil,
    Texture,
    Color,
    Dac,
    NumClients,
};

/** Human-readable client name ("Vertex", "Z&Stencil", ...). */
const char *clientName(Client c);

constexpr int kNumClients = static_cast<int>(Client::NumClients);

/** Per-client read/write byte totals. */
struct TrafficSnapshot
{
    std::array<std::uint64_t, kNumClients> readBytes{};
    std::array<std::uint64_t, kNumClients> writeBytes{};

    std::uint64_t totalRead() const;
    std::uint64_t totalWrite() const;
    std::uint64_t total() const { return totalRead() + totalWrite(); }

    /** Component-wise difference (this - earlier). */
    TrafficSnapshot since(const TrafficSnapshot &earlier) const;
};

/**
 * Byte-accurate GDDR traffic accountant and address-space allocator.
 *
 * Data contents live in the owning objects (buffers, textures, surfaces);
 * the controller records who moved how many bytes, which is what the
 * paper's memory characterization needs.
 */
class MemoryController
{
  public:
    MemoryController();

    /** Charge a read of @p bytes to @p client. */
    void read(Client client, std::uint64_t bytes);

    /** Charge a write of @p bytes to @p client. */
    void write(Client client, std::uint64_t bytes);

    /** Allocate @p bytes of simulated address space (aligned). */
    std::uint64_t allocate(std::uint64_t bytes, std::uint64_t align = 256);

    /** Running totals since construction (or last reset). */
    const TrafficSnapshot &traffic() const { return _traffic; }

    /** Zero the traffic counters (allocations are kept). */
    void resetTraffic();

  private:
    TrafficSnapshot _traffic;
    std::uint64_t _nextAddress = 0x1000;
};

} // namespace wc3d::memsys

#endif // WC3D_MEMORY_CONTROLLER_HH
