/**
 * @file
 * Framebuffer block compression codecs.
 *
 * Z blocks use plane compression: when the depth values in a block are
 * well modelled by one or two planes (the common case when a block is
 * covered by whole triangles), deltas from the plane fit a reduced bit
 * budget and the block compresses 2:1. Colour blocks use the simple
 * scheme the paper describes: "a very simple compression algorithm that
 * only works for blocks of pixels with the same color".
 */

#ifndef WC3D_MEMORY_COMPRESSION_HH
#define WC3D_MEMORY_COMPRESSION_HH

#include <cstdint>
#include <span>

namespace wc3d::memsys {

/**
 * Decide whether a block of 32-bit depth/stencil words compresses 2:1.
 *
 * The model mirrors DEC/ATI-style plane compression over an 8x8 block:
 * fit a plane through three corner samples and test whether every
 * residual fits in a 12-bit signed delta of the 24-bit depth field and
 * the stencil bytes are uniform.
 *
 * @param words  block contents, row-major; size must be width*height
 * @param width  block width in pixels (power of two)
 * @return true when the block is representable at half size
 */
bool zBlockCompressible(std::span<const std::uint32_t> words, int width);

/**
 * Decide whether a colour block compresses (all pixels identical).
 *
 * @param words packed RGBA8 pixels of the block
 * @return true when every pixel has the same colour
 */
bool colorBlockCompressible(std::span<const std::uint32_t> words);

/** Compressed size in bytes for a block of @p raw_bytes (2:1). */
inline std::uint64_t
compressedSize(std::uint64_t raw_bytes)
{
    return raw_bytes / 2;
}

} // namespace wc3d::memsys

#endif // WC3D_MEMORY_COMPRESSION_HH
