/**
 * @file
 * Tag-only set-associative cache model. Data contents live in the owning
 * surface/texture objects; the model tracks residency so hit rates and
 * fill/writeback traffic match a real cache's behaviour (paper Table XIV).
 */

#ifndef WC3D_MEMORY_CACHE_HH
#define WC3D_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wc3d::memsys {

/** Replacement policies supported by CacheModel. */
enum class Replacement
{
    LRU,
    FIFO,
};

/** Outcome of a cache access, including any victim writeback. */
struct CacheAccessResult
{
    bool hit = false;
    /** Address of the line that was filled (line-aligned); 0 on hit. */
    std::uint64_t fillAddress = 0;
    /** True when a dirty victim must be written back. */
    bool writeback = false;
    /** Line-aligned address of the dirty victim (valid when writeback). */
    std::uint64_t writebackAddress = 0;
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
                          static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * A set-associative, write-back, write-allocate cache tag model.
 *
 * Geometry follows the paper's Table XIV notation: "64w x 256B" is a
 * 64-way single-set (fully associative) cache of 256-byte lines;
 * "16w x 16s x 64B" is 16 ways x 16 sets of 64-byte lines.
 */
class CacheModel
{
  public:
    /**
     * @param ways      associativity (> 0)
     * @param sets      number of sets (power of two)
     * @param line_size line size in bytes (power of two)
     * @param policy    replacement policy
     */
    CacheModel(int ways, int sets, int line_size,
               Replacement policy = Replacement::LRU);

    /**
     * Access @p address. On a miss the LRU/FIFO victim is evicted and the
     * line containing the address is installed. @p is_write marks the line
     * dirty on hit or after fill.
     */
    CacheAccessResult access(std::uint64_t address, bool is_write);

    /** @return true when the line holding @p address is resident. */
    bool contains(std::uint64_t address) const;

    /**
     * Write back every dirty line (end-of-frame flush), invoking
     * @p writeback_cb with each dirty line address. Lines stay resident
     * but clean.
     */
    template <typename Fn>
    void
    flushDirty(Fn &&writeback_cb)
    {
        for (auto &line : _lines) {
            if (line.valid && line.dirty) {
                writeback_cb(line.tag * _lineSize);
                line.dirty = false;
                ++_stats.writebacks;
            }
        }
    }

    /** Invalidate everything without writebacks (e.g. after fast clear). */
    void invalidateAll();

    /** Invalidate the line holding @p address if resident (no writeback). */
    void invalidateLine(std::uint64_t address);

    /**
     * Credit @p hits accesses that were filtered before reaching the
     * cache but are guaranteed hits (e.g. intra-quad re-references
     * coalesced by the texture unit): counted as accesses + hits.
     */
    void
    creditFilteredHits(std::uint64_t hits)
    {
        _stats.accesses += hits;
        _stats.hits += hits;
    }

    const CacheStats &stats() const { return _stats; }
    void resetStats() { _stats = CacheStats(); }

    int ways() const { return _ways; }
    int sets() const { return _sets; }
    int lineSize() const { return _lineSize; }
    int sizeBytes() const { return _ways * _sets * _lineSize; }

    /** Line-aligned address for @p address. */
    std::uint64_t
    lineAddress(std::uint64_t address) const
    {
        return address & ~static_cast<std::uint64_t>(_lineSize - 1);
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;     // full line number (address / lineSize)
        std::uint64_t stamp = 0;   // LRU: last touch; FIFO: install time
    };

    Line *findLine(std::uint64_t line_number);
    Line &victimLine(std::uint64_t line_number);

    int _ways;
    int _sets;
    int _lineSize;
    Replacement _policy;
    std::uint64_t _tick = 0;
    std::vector<Line> _lines;
    CacheStats _stats;
};

} // namespace wc3d::memsys

#endif // WC3D_MEMORY_CACHE_HH
