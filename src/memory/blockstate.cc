#include "memory/blockstate.hh"

#include <algorithm>

namespace wc3d::memsys {

BlockStateDirectory::BlockStateDirectory(std::size_t blocks)
    : _states(blocks, BlockState::Cleared)
{
}

void
BlockStateDirectory::fastClear()
{
    std::fill(_states.begin(), _states.end(), BlockState::Cleared);
}

void
BlockStateDirectory::resize(std::size_t blocks)
{
    _states.assign(blocks, BlockState::Cleared);
}

std::size_t
BlockStateDirectory::countInState(BlockState s) const
{
    return static_cast<std::size_t>(
        std::count(_states.begin(), _states.end(), s));
}

} // namespace wc3d::memsys
